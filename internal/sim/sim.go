// Package sim is the scaling-per-query substrate: a discrete-event
// simulator of the instance lifecycle dynamics in Algorithm 1 of the
// paper. Queries arrive according to a trace; an autoscaling policy
// schedules instance creations; each instance needs a random pending
// (startup) time before it can serve, serves exactly one query, and is
// deleted afterwards. The simulator records the QoS metrics (hit rate,
// response times) and the resource cost (instance lifecycle lengths) the
// paper's evaluation reports.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"robustscaler/internal/stats"
)

// Query is one unit of work: an arrival epoch and a service (processing)
// duration in seconds.
type Query struct {
	Arrival float64
	Service float64
}

// Autoscaler is the policy interface. The simulator calls Init once,
// OnTick on every planning boundary (Config.TickInterval), and OnArrival
// after each query has been matched to an instance.
type Autoscaler interface {
	// Init is called once before the first event.
	Init(ctx *Context)
	// OnTick is called at each planning boundary with the tick time.
	OnTick(ctx *Context, now float64)
	// OnArrival is called after each arrival is served, e.g. to replenish
	// a pool.
	OnArrival(ctx *Context, q Query)
}

// Config controls one simulation run.
type Config struct {
	// Start and End bound the simulated time range; queries outside are
	// ignored.
	Start, End float64
	// PendingDist draws instance startup times τ.
	PendingDist stats.Dist
	// MeanPending µτ and MeanService µs are the fixed-cost constants used
	// for the reactive-baseline cost (relative cost denominator).
	MeanPending float64
	MeanService float64
	// TickInterval Δ is the planning period in seconds; 0 disables ticks.
	TickInterval float64
	// Seed drives the pending-time draws.
	Seed int64
	// MeasureDecisionLatency switches on the "real environment" model of
	// Table IV: creations requested during OnTick only take effect after
	// the measured wall-clock duration of the callback plus
	// ActuationLatency.
	MeasureDecisionLatency bool
	// ActuationLatency is an extra fixed delay (seconds) applied to
	// creations when MeasureDecisionLatency is on.
	ActuationLatency float64
}

// instance states.
const (
	stScheduled = iota // creation planned in the future
	stLive             // created; ready at readyAt (pending until then, idle after)
	stBusy             // serving a query
	stGone             // deleted or cancelled
)

type instance struct {
	id        int
	state     int
	createAt  float64 // scheduled creation time
	createdAt float64 // actual creation time
	readyAt   float64 // createdAt + τ
}

// liveHeap orders created instances by creation time: Algorithm 1 pairs
// the i-th query with the i-th instance, so queries consume instances in
// creation order (not readiness order — with random pending times these
// differ, and creation order is what the paper's per-query analysis
// assumes).
type liveHeap []*instance

func (h liveHeap) Len() int { return len(h) }
func (h liveHeap) Less(i, j int) bool {
	if h[i].createdAt != h[j].createdAt {
		return h[i].createdAt < h[j].createdAt
	}
	return h[i].id < h[j].id
}
func (h liveHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *liveHeap) Push(x interface{}) { *h = append(*h, x.(*instance)) }
func (h *liveHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// schedHeap orders scheduled creations by creation time.
type schedHeap []*instance

func (h schedHeap) Len() int            { return len(h) }
func (h schedHeap) Less(i, j int) bool  { return h[i].createAt < h[j].createAt }
func (h schedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *schedHeap) Push(x interface{}) { *h = append(*h, x.(*instance)) }
func (h *schedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Context is the policy's view of the simulation. All mutation goes
// through it so the simulator can keep cost accounting consistent.
type Context struct {
	cfg Config
	rng *rand.Rand

	now       float64
	nextID    int
	scheduled schedHeap
	live      liveHeap

	totalCost    float64
	arrivals     []float64 // arrival times seen so far (for RecentQPS)
	arrivalsSeen int

	// Pending creations requested inside the current OnTick when latency
	// measurement is on.
	inTick       bool
	tickRequests []float64

	res *Result
}

// Now returns the current simulation time.
func (c *Context) Now() float64 { return c.now }

// Rand returns the simulation RNG (shared with pending-time draws).
func (c *Context) Rand() *rand.Rand { return c.rng }

// ArrivalsSeen returns how many queries have arrived so far.
func (c *Context) ArrivalsSeen() int { return c.arrivalsSeen }

// LiveCount returns the number of created, not-yet-consumed instances
// (pending or idle).
func (c *Context) LiveCount() int { return len(c.live) }

// ScheduledCount returns the number of future scheduled creations.
func (c *Context) ScheduledCount() int { return len(c.scheduled) }

// AvailableCount returns LiveCount + ScheduledCount: the instances already
// committed to the next arrivals.
func (c *Context) AvailableCount() int { return len(c.live) + len(c.scheduled) }

// RecentQPS returns the average arrival rate over the trailing window
// (seconds), the signal AdapBP resizes on.
func (c *Context) RecentQPS(window float64) float64 {
	if window <= 0 {
		panic(fmt.Sprintf("sim: RecentQPS window %g <= 0", window))
	}
	cut := c.now - window
	n := 0
	for i := len(c.arrivals) - 1; i >= 0 && c.arrivals[i] >= cut; i-- {
		n++
	}
	return float64(n) / window
}

// Schedule plans an instance creation at time at (clamped to now). During
// a latency-measured tick the request is buffered and shifted by the
// measured decision latency afterwards.
func (c *Context) Schedule(at float64) {
	if at < c.now {
		at = c.now
	}
	if c.inTick && c.cfg.MeasureDecisionLatency {
		c.tickRequests = append(c.tickRequests, at)
		return
	}
	c.scheduleAt(at)
}

func (c *Context) scheduleAt(at float64) {
	inst := &instance{id: c.nextID, state: stScheduled, createAt: at}
	c.nextID++
	heap.Push(&c.scheduled, inst)
}

// CancelScheduled cancels up to n future scheduled creations (latest
// first), returning how many were cancelled. Cancelled creations cost
// nothing.
func (c *Context) CancelScheduled(n int) int {
	cancelled := 0
	for cancelled < n && len(c.scheduled) > 0 {
		// Find and remove the latest-scheduled entry.
		latest := 0
		for i := 1; i < len(c.scheduled); i++ {
			if c.scheduled[i].createAt > c.scheduled[latest].createAt {
				latest = i
			}
		}
		c.scheduled[latest].state = stGone
		heap.Remove(&c.scheduled, latest)
		cancelled++
	}
	return cancelled
}

// DeleteIdle deletes up to n created instances (pending or idle),
// preferring the least-ready ones, accounting their lifecycle cost up to
// now. It returns how many were deleted. AdapBP uses this to shrink its
// pool.
func (c *Context) DeleteIdle(n int) int {
	deleted := 0
	for deleted < n && len(c.live) > 0 {
		// Remove the instance that became (or becomes) ready last.
		latest := 0
		for i := 1; i < len(c.live); i++ {
			if c.live[i].readyAt > c.live[latest].readyAt {
				latest = i
			}
		}
		inst := c.live[latest]
		heap.Remove(&c.live, latest)
		c.retire(inst, c.now)
		deleted++
	}
	return deleted
}

// retire accounts an instance's lifecycle cost [createdAt, until].
func (c *Context) retire(inst *instance, until float64) {
	inst.state = stGone
	cost := until - inst.createdAt
	if cost < 0 {
		cost = 0
	}
	c.totalCost += cost
	c.res.InstancesCreated++
}

// materialize turns scheduled creations with createAt ≤ t into live
// instances, drawing their pending times.
func (c *Context) materialize(t float64) {
	for len(c.scheduled) > 0 && c.scheduled[0].createAt <= t {
		inst := heap.Pop(&c.scheduled).(*instance)
		inst.state = stLive
		inst.createdAt = inst.createAt
		inst.readyAt = inst.createdAt + c.cfg.PendingDist.Sample(c.rng)
		heap.Push(&c.live, inst)
	}
}

// Result aggregates the per-run metrics the paper reports.
type Result struct {
	NumQueries       int
	InstancesCreated int

	Hits  []bool    // per query: instance ready upon arrival
	RTs   []float64 // per query: response time (wait + service)
	Waits []float64 // per query: wait before processing starts

	TotalCost    float64 // Σ instance lifecycle lengths, seconds
	BaselineCost float64 // cost of pure reactive BP(0) on the same trace
	WallTime     time.Duration
}

// HitRate returns the fraction of hit queries.
func (r *Result) HitRate() float64 {
	if r.NumQueries == 0 {
		return 0
	}
	n := 0
	for _, h := range r.Hits {
		if h {
			n++
		}
	}
	return float64(n) / float64(r.NumQueries)
}

// RTAvg returns the mean response time.
func (r *Result) RTAvg() float64 { return stats.Mean(r.RTs) }

// RTQuantile returns the p-quantile of response times.
func (r *Result) RTQuantile(p float64) float64 { return stats.Quantile(r.RTs, p) }

// RelativeCost returns TotalCost / BaselineCost (the paper's
// relative_cost metric, normalized to the pure reactive strategy).
func (r *Result) RelativeCost() float64 {
	if r.BaselineCost == 0 {
		return 0
	}
	return r.TotalCost / r.BaselineCost
}

// CostPerQuery returns the average instance lifecycle length.
func (r *Result) CostPerQuery() float64 {
	if r.NumQueries == 0 {
		return 0
	}
	return r.TotalCost / float64(r.NumQueries)
}

// IdleCostPerQuery returns the average cost net of the irreducible
// pending+service time — the quantity RobustScaler-cost budgets.
func (r *Result) IdleCostPerQuery(meanPending float64) float64 {
	if r.NumQueries == 0 {
		return 0
	}
	var svc float64
	for _, rt := range r.RTs {
		svc += rt
	}
	for _, w := range r.Waits {
		svc -= w
	}
	// svc is now Σ service times.
	return (r.TotalCost - svc - float64(r.NumQueries)*meanPending) / float64(r.NumQueries)
}

// HitRateWindowStats returns the mean and variance of the hit indicator
// averaged over consecutive windows of w queries (the Fig. 5
// construction).
func (r *Result) HitRateWindowStats(w int) (mean, variance float64) {
	vals := make([]float64, len(r.Hits))
	for i, h := range r.Hits {
		if h {
			vals[i] = 1
		}
	}
	wm := stats.WindowedMeans(vals, w)
	return stats.Mean(wm), stats.Variance(wm)
}

// RTWindowStats returns the mean and variance of window-averaged response
// times (Fig. 5).
func (r *Result) RTWindowStats(w int) (mean, variance float64) {
	wm := stats.WindowedMeans(r.RTs, w)
	return stats.Mean(wm), stats.Variance(wm)
}

// Run replays the queries under the policy and returns the metrics.
// Queries must be sorted by arrival time.
func Run(queries []Query, policy Autoscaler, cfg Config) (*Result, error) {
	if cfg.PendingDist == nil {
		return nil, fmt.Errorf("sim: Config.PendingDist is required")
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("sim: invalid range [%g, %g)", cfg.Start, cfg.End)
	}
	for i := 1; i < len(queries); i++ {
		if queries[i].Arrival < queries[i-1].Arrival {
			return nil, fmt.Errorf("sim: queries not sorted at index %d", i)
		}
	}
	res := &Result{}
	ctx := &Context{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		now: cfg.Start,
		res: res,
	}
	wallStart := time.Now()
	policy.Init(ctx)

	nextTick := cfg.Start
	hasTicks := cfg.TickInterval > 0

	runTick := func(at float64) {
		ctx.now = at
		ctx.materialize(at)
		if cfg.MeasureDecisionLatency {
			ctx.inTick = true
			ctx.tickRequests = ctx.tickRequests[:0]
			t0 := time.Now()
			policy.OnTick(ctx, at)
			latency := time.Since(t0).Seconds() + cfg.ActuationLatency
			ctx.inTick = false
			for _, reqAt := range ctx.tickRequests {
				eff := reqAt
				if eff < at+latency {
					eff = at + latency
				}
				ctx.scheduleAt(eff)
			}
		} else {
			policy.OnTick(ctx, at)
		}
	}

	for qi := range queries {
		q := queries[qi]
		if q.Arrival < cfg.Start || q.Arrival >= cfg.End {
			continue
		}
		// Run all planning ticks up to the arrival.
		for hasTicks && nextTick <= q.Arrival {
			runTick(nextTick)
			nextTick += cfg.TickInterval
		}
		ctx.now = q.Arrival
		ctx.materialize(q.Arrival)
		ctx.arrivals = append(ctx.arrivals, q.Arrival)
		ctx.arrivalsSeen++

		// Match the query to an instance per Algorithm 1.
		var inst *instance
		if len(ctx.live) > 0 {
			inst = heap.Pop(&ctx.live).(*instance)
		} else {
			// No created instance: cancel one future scheduled creation
			// (the paper's "originally scheduled creation is canceled")
			// and cold-start now.
			if len(ctx.scheduled) > 0 {
				ctx.CancelScheduled(1)
			}
			inst = &instance{id: ctx.nextID, state: stLive, createAt: q.Arrival,
				createdAt: q.Arrival}
			ctx.nextID++
			inst.readyAt = q.Arrival + cfg.PendingDist.Sample(ctx.rng)
		}
		hit := inst.readyAt <= q.Arrival
		wait := inst.readyAt - q.Arrival
		if wait < 0 {
			wait = 0
		}
		finish := q.Arrival + wait + q.Service
		inst.state = stBusy
		ctx.retire(inst, finish)

		res.NumQueries++
		res.Hits = append(res.Hits, hit)
		res.Waits = append(res.Waits, wait)
		res.RTs = append(res.RTs, wait+q.Service)
		res.BaselineCost += cfg.MeanPending + q.Service

		policy.OnArrival(ctx, q)
	}
	// Drain remaining ticks so trailing instances are planned/materialized
	// consistently, then account leftovers up to the end of the horizon.
	for hasTicks && nextTick < cfg.End {
		runTick(nextTick)
		nextTick += cfg.TickInterval
	}
	ctx.now = cfg.End
	ctx.materialize(cfg.End)
	for len(ctx.live) > 0 {
		inst := heap.Pop(&ctx.live).(*instance)
		ctx.retire(inst, cfg.End)
	}
	res.TotalCost = ctx.totalCost
	res.WallTime = time.Since(wallStart)
	return res, nil
}
