package sim

import (
	"math/rand"
	"testing"

	"robustscaler/internal/stats"
)

// benchQueries draws a Poisson-ish arrival stream.
func benchQueries(n int) []Query {
	rng := rand.New(rand.NewSource(1))
	qs := make([]Query, n)
	t := 0.0
	for i := range qs {
		t += rng.ExpFloat64() * 2
		qs[i] = Query{Arrival: t, Service: 10}
	}
	return qs
}

// replenish keeps a pool of 3 instances (BP-style) so the bench exercises
// scheduling, matching and retirement together.
type replenish struct{}

func (replenish) Init(ctx *Context) {
	for i := 0; i < 3; i++ {
		ctx.Schedule(ctx.Now())
	}
}
func (replenish) OnTick(*Context, float64)        {}
func (replenish) OnArrival(ctx *Context, _ Query) { ctx.Schedule(ctx.Now()) }

// BenchmarkRun measures simulator throughput: 100k queries through the
// full event loop.
func BenchmarkRun(b *testing.B) {
	qs := benchQueries(100000)
	cfg := Config{
		Start:       0,
		End:         qs[len(qs)-1].Arrival + 1,
		PendingDist: stats.Deterministic{Value: 13},
		MeanPending: 13,
		Seed:        1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(qs, replenish{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
