package encode

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// byteAtATime feeds the decoder one byte per Read, proving the decode
// is truly incremental (no hidden whole-body buffering assumption).
type byteAtATime struct {
	s string
	i int
}

func (r *byteAtATime) Read(p []byte) (int, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	p[0] = r.s[r.i]
	r.i++
	return 1, nil
}

func TestDecodeJSONArrayBasic(t *testing.T) {
	cases := []struct {
		name, body string
		want       []float64
		sorted     bool
	}{
		{"simple", `{"timestamps":[1,2,3]}`, []float64{1, 2, 3}, true},
		{"floats", `{"timestamps":[1.5,2.25e2,-3]}`, []float64{1.5, 225, -3}, false},
		{"whitespace", "{\n  \"timestamps\": [ 1 , 2 ]\n}", []float64{1, 2}, true},
		{"unknown fields skipped", `{"meta":{"a":[1,{"b":2}]},"timestamps":[5,6],"trail":"x"}`, []float64{5, 6}, true},
		{"empty array", `{"timestamps":[]}`, nil, true},
		{"null timestamps", `{"timestamps":null}`, nil, true},
		{"absent timestamps", `{"other":1}`, nil, true},
		{"duplicate key keeps last", `{"timestamps":[9,9,9],"timestamps":[4,7]}`, []float64{4, 7}, true},
		{"trailing garbage ignored", `{"timestamps":[1]}garbage`, []float64{1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batch, err := DecodeJSONArray(strings.NewReader(tc.body), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer batch.Release()
			got := batch.Flatten()
			if len(got) != len(tc.want) {
				t.Fatalf("decoded %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("decoded %v, want %v", got, tc.want)
				}
			}
			if batch.Count != len(tc.want) || batch.Sorted != tc.sorted {
				t.Fatalf("count/sorted = %d/%v, want %d/%v", batch.Count, batch.Sorted, len(tc.want), tc.sorted)
			}
		})
	}
}

func TestDecodeJSONArrayErrors(t *testing.T) {
	cases := []struct{ name, body string }{
		{"empty body", ``},
		{"bare array", `[1,2,3]`},
		{"bare number", `42`},
		{"truncated object", `{"timestamps":[1,2`},
		{"string element", `{"timestamps":[1,"2"]}`},
		{"object element", `{"timestamps":[{}]}`},
		{"not an array", `{"timestamps":7}`},
		{"syntax error", `{"timestamps":[1,,2]}`},
		{"trailing comma after array", `{"timestamps":[1],}`},
		{"trailing comma in array", `{"timestamps":[1,]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeJSONArray(strings.NewReader(tc.body), nil); err == nil {
				t.Fatalf("decode of %q succeeded, want error", tc.body)
			}
		})
	}
}

func TestDecodeJSONArrayRunsCheck(t *testing.T) {
	reject := func(chunk []float64) error {
		for _, v := range chunk {
			if v < 0 {
				return fmt.Errorf("negative %g", v)
			}
		}
		return nil
	}
	if _, err := DecodeJSONArray(strings.NewReader(`{"timestamps":[1,2,-3]}`), reject); err == nil {
		t.Fatal("check not applied")
	}
	batch, err := DecodeJSONArray(strings.NewReader(`{"timestamps":[1,2,3]}`), reject)
	if err != nil {
		t.Fatal(err)
	}
	batch.Release()
}

func TestDecodeJSONArraySpansChunks(t *testing.T) {
	// More values than one pooled chunk, decoded through a 1-byte-at-a-
	// time reader: chunking, carry and incremental reads all exercised.
	n := ChunkLen + 123
	var sb strings.Builder
	sb.WriteString(`{"timestamps":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d.5", i)
	}
	sb.WriteString(`]}`)
	batch, err := DecodeJSONArray(&byteAtATime{s: sb.String()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Release()
	if batch.Count != n || !batch.Sorted {
		t.Fatalf("count/sorted = %d/%v, want %d/true", batch.Count, batch.Sorted, n)
	}
	flat := batch.Flatten()
	for i, v := range flat {
		if v != float64(i)+0.5 {
			t.Fatalf("value %d = %g, want %g", i, v, float64(i)+0.5)
		}
	}
}

// TestDecodeJSONArrayLargeSiblingValues pins the decoder-buffer
// handoff: skipping a large sibling value grows json.Decoder's internal
// buffer far past the array scanner's 64 KiB window, so when keys
// follow the timestamps array, the resumed token decoder must see the
// buffered remainder the scanner never pulled — dropping it rejected
// well-formed bodies (and could in principle misparse them).
func TestDecodeJSONArrayLargeSiblingValues(t *testing.T) {
	pad := strings.Repeat("x", 128*1024)
	tail := strings.Repeat("y", 70*1024)
	body := fmt.Sprintf(`{"pad":%q,"timestamps":[1,2,3],"tail":%q}`, pad, tail)
	batch, err := DecodeJSONArray(strings.NewReader(body), nil)
	if err != nil {
		t.Fatalf("decode with large siblings: %v", err)
	}
	defer batch.Release()
	if batch.Count != 3 || !batch.Sorted {
		t.Fatalf("count/sorted = %d/%v, want 3/true", batch.Count, batch.Sorted)
	}
	// Same shape through the 1-byte reader (tiny decoder buffers).
	b2, err := DecodeJSONArray(&byteAtATime{s: body}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release()
	if b2.Count != 3 {
		t.Fatalf("byte-at-a-time count = %d, want 3", b2.Count)
	}
	// A duplicate timestamps key after the large pad must still win.
	body = fmt.Sprintf(`{"timestamps":[9],"pad":%q,"timestamps":[4,7],"tail":%q}`, pad, tail)
	b3, err := DecodeJSONArray(strings.NewReader(body), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Release()
	if got := b3.Flatten(); len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Fatalf("duplicate-key decode = %v, want [4 7]", got)
	}
}

func TestDecodeJSONArrayHonorsLimitReader(t *testing.T) {
	body := `{"timestamps":[1,2,3,4,5,6,7,8,9,10]}`
	_, err := DecodeJSONArray(LimitReader(strings.NewReader(body), 10), nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge passed through", err)
	}
}
