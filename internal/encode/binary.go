package encode

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// binaryBufLen is the read window of the binary decoder: exactly one
// chunk's worth of little-endian float64s, so every full read converts
// straight into one pooled chunk.
const binaryBufLen = 8 * ChunkLen

var binaryBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, binaryBufLen)
		return &b
	},
}

// DecodeBinary reads a stream of little-endian IEEE-754 float64
// timestamps (application/octet-stream) into pooled chunks. check (if
// non-nil) vets every completed chunk. A body whose length is not a
// multiple of 8 fails with a truncation error.
func DecodeBinary(r io.Reader, check CheckFunc) (*Batch, error) {
	w := newBatchWriter(check)
	bufp := binaryBufPool.Get().(*[]byte)
	defer binaryBufPool.Put(bufp)
	buf := *bufp

	for {
		n, err := io.ReadFull(r, buf)
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			// Real read failures (e.g. the size limit firing) outrank the
			// truncation check — a limited stream is usually also torn.
			return w.finish(err)
		}
		if n%8 != 0 {
			return w.finish(fmt.Errorf("encode: binary body truncated: %d trailing bytes (want multiples of 8)", n%8))
		}
		for i := 0; i < n; i += 8 {
			if aerr := w.add(math.Float64frombits(binary.LittleEndian.Uint64(buf[i:]))); aerr != nil {
				return w.finish(aerr)
			}
		}
		if err != nil { // io.EOF / io.ErrUnexpectedEOF: clean end of stream
			return w.finish(nil)
		}
	}
}
