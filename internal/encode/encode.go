// Package encode implements the high-rate ingest wire formats of the
// control plane: newline-delimited JSON numbers (application/x-ndjson)
// and raw little-endian float64 streams (application/octet-stream),
// optionally gzip-compressed. Both decoders work incrementally in
// fixed-size pooled chunks, so a million-event request body is never
// materialized as one giant slice on the decode side — the only large
// allocation an ingest makes is the engine's own arrival history.
//
// The decoders also prove monotonicity as a side effect of the single
// pass they already make: a Batch whose Sorted flag is set can be
// appended into an engine's sorted history without the defensive
// copy-and-sort the generic ingest path pays.
package encode

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// ChunkLen is the capacity of one pooled decode chunk, in float64s
// (32 KiB of payload). Chunks are recycled across requests through a
// sync.Pool, so steady-state decoding allocates nothing per event.
const ChunkLen = 4096

// ErrTooLarge reports a stream that exceeded its size budget. The HTTP
// layer maps it (and http.MaxBytesError) to 413 Request Entity Too
// Large.
var ErrTooLarge = errors.New("encode: stream exceeds the configured size limit")

// CheckFunc vets one decoded chunk; a non-nil error aborts the decode.
// The engine's timestamp validator (engine.ValidateTimestamps) slots in
// here, so validation happens as the stream is read and a poisoned tail
// is never fully decoded.
type CheckFunc func([]float64) error

// Batch is a fully decoded, fully validated stream of timestamps held
// in pooled chunks. Callers must Release it when done; the chunk memory
// is shared with future decodes afterwards.
type Batch struct {
	// Chunks holds the values in decode order. Every chunk except the
	// last is full (ChunkLen values).
	Chunks [][]float64
	// Count is the total number of values across Chunks.
	Count int
	// Sorted reports that the stream was non-decreasing end to end —
	// within every chunk and across chunk boundaries — proving the batch
	// safe for an append-only sorted ingest.
	Sorted bool
}

// chunkPool holds *[ChunkLen]float64 rather than slice headers: an
// array pointer rides in the pool's interface word without boxing, so
// Get/Put allocate nothing in steady state.
var chunkPool = sync.Pool{
	New: func() any { return new([ChunkLen]float64) },
}

func getChunk() []float64 { return chunkPool.Get().(*[ChunkLen]float64)[:0] }

func putChunk(c []float64) {
	if cap(c) == ChunkLen {
		chunkPool.Put((*[ChunkLen]float64)(c[:ChunkLen]))
	}
}

// Release returns the batch's chunks to the shared pool. The batch and
// its chunks must not be used afterwards.
func (b *Batch) Release() {
	for _, c := range b.Chunks {
		putChunk(c)
	}
	b.Chunks = nil
	b.Count = 0
}

// Flatten copies the batch into one freshly allocated slice — the
// fallback for unsorted streams that need a sort before ingestion.
func (b *Batch) Flatten() []float64 {
	out := make([]float64, 0, b.Count)
	for _, c := range b.Chunks {
		out = append(out, c...)
	}
	return out
}

// batchWriter accumulates decoded values into pooled chunks, tracking
// count and sortedness, and runs the caller's check on every completed
// chunk so invalid data aborts the decode early.
type batchWriter struct {
	batch Batch
	cur   []float64
	prev  float64
	check CheckFunc
}

func newBatchWriter(check CheckFunc) *batchWriter {
	return &batchWriter{
		batch: Batch{Sorted: true},
		cur:   getChunk(),
		prev:  math.Inf(-1),
		check: check,
	}
}

func (w *batchWriter) add(v float64) error {
	// A NaN compares false and would corrupt the sortedness proof, but
	// every CheckFunc in this repo rejects NaN at the chunk boundary, so
	// v < prev is sufficient here: a NaN flips Sorted off conservatively
	// (NaN < anything is false, anything < NaN is false — the flag stays
	// whatever the surrounding finite values imply, and the check then
	// fails the whole decode anyway).
	if v < w.prev {
		w.batch.Sorted = false
	}
	w.prev = v
	w.cur = append(w.cur, v)
	if len(w.cur) == ChunkLen {
		return w.flush()
	}
	return nil
}

func (w *batchWriter) flush() error {
	if len(w.cur) == 0 {
		return nil
	}
	if w.check != nil {
		if err := w.check(w.cur); err != nil {
			return err
		}
	}
	w.batch.Chunks = append(w.batch.Chunks, w.cur)
	w.batch.Count += len(w.cur)
	w.cur = getChunk()
	return nil
}

// finish seals the batch. On error the writer releases everything it
// holds, so callers only Release on success.
func (w *batchWriter) finish(err error) (*Batch, error) {
	if err == nil {
		err = w.flush()
	}
	if err != nil {
		putChunk(w.cur)
		w.batch.Release()
		return nil, err
	}
	putChunk(w.cur)
	b := w.batch
	return &b, nil
}

// gzipPool recycles gzip decompressors; a gzip.Reader carries a ~40 KiB
// window and history buffer worth reusing across requests.
var gzipPool sync.Pool

// Gzip wraps a compressed request body in a pooled gzip decompressor.
// Call release once done reading (success or failure); it returns the
// decompressor to the pool.
func Gzip(r io.Reader) (io.Reader, func(), error) {
	if zr, ok := gzipPool.Get().(*gzip.Reader); ok {
		if err := zr.Reset(r); err != nil {
			gzipPool.Put(zr)
			return nil, nil, fmt.Errorf("encode: bad gzip stream: %w", err)
		}
		return zr, func() { gzipPool.Put(zr) }, nil
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, nil, fmt.Errorf("encode: bad gzip stream: %w", err)
	}
	return zr, func() { gzipPool.Put(zr) }, nil
}

// LimitReader caps how many bytes may be read from r, failing with
// ErrTooLarge (not io.EOF) once the budget is exceeded. It bounds the
// decompressed size of gzip bodies, which http.MaxBytesReader — applied
// to the raw body — cannot see.
func LimitReader(r io.Reader, n int64) io.Reader {
	return &limitReader{r: r, n: n}
}

type limitReader struct {
	r io.Reader
	n int64 // remaining budget
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		// Budget exhausted: a stream of exactly the budget must still end
		// in io.EOF, so probe one byte to distinguish "done" from "more".
		var probe [1]byte
		n, err := l.r.Read(probe[:])
		if n > 0 {
			return 0, ErrTooLarge
		}
		return 0, err
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}
