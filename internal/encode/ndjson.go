package encode

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// maxLineLen bounds one NDJSON line. A JSON number is tens of bytes;
// 64 KiB leaves room for absurd-but-legal precision while making sure a
// newline-free garbage body fails fast instead of buffering forever.
const maxLineLen = 64 * 1024

// lineBufPool recycles the read buffers of the NDJSON scanner. The
// buffer doubles as the carry space for a line straddling two reads, so
// its size is maxLineLen plus one read window.
var lineBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 2*maxLineLen)
		return &b
	},
}

// DecodeNDJSON reads newline-delimited JSON numbers — one timestamp per
// line, blank lines ignored — into pooled chunks. check (if non-nil)
// vets every completed chunk; its error aborts the decode. The final
// line does not need a trailing newline.
//
// The scanner is fused with the number parse: at millions of lines per
// request, touching each byte once (classify and accumulate the decimal
// in the same pass) is what keeps the per-event cost to a handful of
// nanoseconds. Lines the fused path cannot commit — exponents, >15
// digits, CRLF endings, stray whitespace — fall back to a strconv parse
// of the full line, so the fast path never changes what is accepted.
func DecodeNDJSON(r io.Reader, check CheckFunc) (*Batch, error) {
	w := newBatchWriter(check)
	bufp := lineBufPool.Get().(*[]byte)
	defer lineBufPool.Put(bufp)
	buf := *bufp

	fill := 0 // bytes of buf holding unconsumed input
	line := 0 // 1-based count of consumed lines, for error messages
	for {
		n, rerr := r.Read(buf[fill:])
		fill += n
		data := buf[:fill]
		pos := 0
		for pos < len(data) {
			adv, err := w.consumeLine(data[pos:], &line)
			if err != nil {
				return w.finish(err)
			}
			if adv == 0 { // partial line: wait for more input
				break
			}
			pos += adv
		}
		// Carry the partial tail to the front of the buffer.
		fill = copy(buf, data[pos:])
		if rerr == io.EOF {
			if fill > 0 { // final line without trailing newline
				line++
				if err := w.addLine(buf[:fill], line); err != nil {
					return w.finish(err)
				}
			}
			return w.finish(nil)
		}
		if rerr != nil {
			return w.finish(rerr)
		}
		if fill > maxLineLen {
			return w.finish(fmt.Errorf("encode: ndjson line %d exceeds %d bytes", line+1, maxLineLen))
		}
	}
}

// consumeLine decodes one newline-terminated line from the front of
// data, returning how many bytes it consumed (0 if data holds no
// complete line yet). The common shape — optional sign, up to 15
// digits, optional decimal point, '\n' — is parsed in the same scan
// that finds the newline; see parseFloat for why the integer arithmetic
// is bit-exact with strconv.
func (w *batchWriter) consumeLine(data []byte, line *int) (int, error) {
	i := 0
	neg := false
	if i < len(data) && (data[i] == '-' || data[i] == '+') {
		neg = data[i] == '-'
		i++
	}
	var mant uint64
	digits, fracDigits := 0, 0
	seenDot := false
scan:
	for ; i < len(data); i++ {
		c := data[i]
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			digits++
			if seenDot {
				fracDigits++
			}
		case c == '.' && !seenDot:
			seenDot = true
		default:
			break scan
		}
	}
	if i == len(data) {
		return 0, nil // no newline yet; carry and read more
	}
	if data[i] == '\n' && fastExact(mant, digits) {
		v := float64(mant) / pow10[fracDigits]
		if neg {
			v = -v
		}
		*line++
		return i + 1, w.add(v)
	}
	// Slow path: find the newline and hand the whole line to strconv.
	nl := bytes.IndexByte(data[i:], '\n')
	if nl < 0 {
		return 0, nil
	}
	end := i + nl
	*line++
	return end + 1, w.addLine(data[:end], *line)
}

// addLine parses one line (sans newline) and appends its value.
func (w *batchWriter) addLine(b []byte, line int) error {
	b = trimSpace(b)
	if len(b) == 0 {
		return nil
	}
	v, err := parseFloat(b)
	if err != nil {
		return fmt.Errorf("encode: ndjson line %d: %w", line, err)
	}
	return w.add(v)
}

// trimSpace strips JSON-insignificant whitespace (and the \r of CRLF
// line endings) from both ends.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v'
}

// pow10 holds the exactly-representable powers of ten used by the fast
// decimal path (10^22 is the largest float64-exact power).
var pow10 = [...]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// fastExact reports whether a scanned decimal can be converted with one
// IEEE divide, bit-exactly with strconv (Clinger's fast path): the
// mantissa must be float64-exact (< 2^53 — a microsecond-precision Unix
// epoch is ~1.7e15, comfortably inside) and must not have wrapped
// uint64 while accumulating (impossible at ≤ 19 digits). The power-of-
// ten divisor is exact for every reachable fracDigits (≤ 19 < 22).
func fastExact(mant uint64, digits int) bool {
	return digits >= 1 && digits <= 19 && mant < 1<<53
}

// parseFloat converts a JSON number. The fast path handles the shape
// virtually every timestamp takes — an optional sign, digits, an
// optional decimal point — with integer arithmetic: when the mantissa
// and its power-of-ten divisor are both float64-exact (fastExact), one
// correctly-rounded IEEE divide yields exactly what strconv.ParseFloat
// would (Clinger's fast path). Everything else — exponents, oversized
// mantissas — falls back to strconv.
func parseFloat(b []byte) (float64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		neg = s[0] == '-'
		s = s[1:]
	}
	var mant uint64
	digits, fracDigits := 0, 0
	seenDot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			digits++
			if seenDot {
				fracDigits++
			}
		case c == '.' && !seenDot:
			seenDot = true
		default:
			return parseFloatSlow(b)
		}
	}
	if !fastExact(mant, digits) {
		return parseFloatSlow(b)
	}
	v := float64(mant) / pow10[fracDigits]
	if neg {
		v = -v
	}
	return v, nil
}

func parseFloatSlow(b []byte) (float64, error) {
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", b)
	}
	return v, nil
}
