package encode

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
)

// DecodeJSONArray streams the legacy ingest body — a JSON object with a
// "timestamps" array of numbers — into pooled chunks, so the request is
// decoded incrementally like the NDJSON and binary formats: a size cap
// on the underlying reader (http.MaxBytesReader / LimitReader) is
// honored as the body streams in, and the values are never materialized
// as one whole-body []float64 on the decode side.
//
// The object shell (keys, nested unknown values) is parsed with
// encoding/json's token decoder — it is a handful of tokens. The
// timestamps array itself, which is the entire volume of the body, is
// scanned byte-wise with the same fused number parse the NDJSON decoder
// uses, so the legacy format decodes at streaming-format speed instead
// of paying a token allocation per element.
//
// Accepted input matches the old one-shot json.Unmarshal of
//
//	struct{ Timestamps []float64 `json:"timestamps"` }
//
// with the NDJSON decoder's leniency on number spellings (e.g. "+1" is
// accepted; strconv is the arbiter, exactly as on the NDJSON path):
// unknown sibling fields are skipped, a null timestamps field means
// empty, a duplicate timestamps key keeps the last occurrence, and
// trailing bytes after the closing brace are left unread. check (if
// non-nil) vets every completed chunk; its error aborts the decode.
func DecodeJSONArray(r io.Reader, check CheckFunc) (*Batch, error) {
	w := newBatchWriter(check)
	in := io.Reader(r)
	// afterComma marks a re-entry right after the scanner consumed a
	// ',' following the array: a key MUST follow ({"timestamps":[1],}
	// is invalid JSON and must stay a 400, even though the synthetic
	// "{"+"}" continuation would otherwise parse as an empty object).
	afterComma := false
object:
	for {
		dec := json.NewDecoder(in)
		tok, err := dec.Token()
		if err != nil {
			return w.finish(badJSON(err))
		}
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			return w.finish(fmt.Errorf("encode: json body must be an object with a timestamps array, got %v", tok))
		}
		if afterComma && !dec.More() {
			return w.finish(fmt.Errorf("encode: trailing comma after timestamps array"))
		}
		afterComma = false
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return w.finish(badJSON(err))
			}
			key, ok := keyTok.(string)
			if !ok { // cannot happen inside an object; defensive
				return w.finish(fmt.Errorf("encode: unexpected token %v for object key", keyTok))
			}
			// encoding/json matches keys case-insensitively, so the legacy
			// one-shot path accepted "Timestamps" too; fold here to keep
			// that contract (found by FuzzDecodeJSONArray).
			if !strings.EqualFold(key, "timestamps") {
				if err := skipJSONValue(dec); err != nil {
					return w.finish(badJSON(err))
				}
				continue
			}
			open, err := dec.Token()
			if err != nil {
				return w.finish(badJSON(err))
			}
			if open == nil {
				// "timestamps": null — same as absent (and a duplicate
				// null overrides earlier values, like encoding/json).
				w.reset()
				continue
			}
			if d, ok := open.(json.Delim); !ok || d != '[' {
				return w.finish(fmt.Errorf("encode: timestamps must be an array, got %v", open))
			}
			// Duplicate key: encoding/json keeps the last occurrence, so
			// drop anything a previous one accumulated.
			w.reset()
			// Hand the stream — the decoder's unread buffer plus the rest
			// of the body — to the byte-wise array scanner. src must
			// outlive the scanner: the decoder's buffer can exceed the
			// scanner's window (a large skipped sibling value grows it),
			// so src may still hold unread bytes when the scan returns.
			src := io.MultiReader(dec.Buffered(), in)
			br := getScanReader(src)
			next, err := scanNumberArray(br, w)
			if err != nil {
				putScanReader(br)
				return w.finish(err)
			}
			switch next {
			case '}':
				// Object closed right after the array (the overwhelmingly
				// common shape). Trailing bytes stay unread, as before.
				putScanReader(br)
				return w.finish(nil)
			case ',':
				// More keys follow the array. Re-enter the token decoder
				// over a synthetic object: "{" + the scanner's unread
				// buffer + the unread remainder of src (NOT bare `in` —
				// that would drop whatever the decoder had buffered
				// beyond the scanner's window).
				left, _ := br.Peek(br.Buffered())
				leftCopy := append([]byte(nil), left...)
				putScanReader(br)
				in = io.MultiReader(strings.NewReader("{"), bytes.NewReader(leftCopy), src)
				afterComma = true
				continue object
			default:
				putScanReader(br)
				return w.finish(fmt.Errorf("encode: unexpected %q after timestamps array", next))
			}
		}
		if _, err := dec.Token(); err != nil { // consume '}'
			return w.finish(badJSON(err))
		}
		return w.finish(nil)
	}
}

// scanReaderPool recycles the buffered readers behind the array
// scanner; 64 KiB windows keep the Peek fast path covering any sane
// number token.
var scanReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64*1024) },
}

func getScanReader(r io.Reader) *bufio.Reader {
	br := scanReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putScanReader(br *bufio.Reader) {
	br.Reset(nil) // drop the source so the pool holds no body references
	scanReaderPool.Put(br)
}

// scanNumberArray consumes a JSON array of numbers — the caller hands
// over immediately after '[' — appending each value to w. It returns
// the first non-space byte after the closing ']' (the caller dispatches
// on '}' vs ','). Number tokens are sliced out of the reader's Peek
// window and parsed with the shared fused decimal parse (strconv for
// exponents and oversized mantissas), so the per-element cost matches
// the NDJSON fast path.
func scanNumberArray(br *bufio.Reader, w *batchWriter) (byte, error) {
	expectValue, first := true, true
	idx := 0
	for {
		c, err := readNonSpace(br)
		if err != nil {
			return 0, scanEOF(err)
		}
		switch {
		case expectValue && c == ']' && first:
			// [] — empty array; close below.
		case expectValue:
			if err := br.UnreadByte(); err != nil {
				return 0, err
			}
			v, err := readNumber(br, idx)
			if err != nil {
				return 0, err
			}
			if err := w.add(v); err != nil {
				return 0, err
			}
			idx++
			first = false
			expectValue = false
			continue
		case c == ',':
			expectValue = true
			continue
		case c == ']':
			// close below
		default:
			return 0, fmt.Errorf("encode: timestamps array: unexpected %q after element %d", c, idx)
		}
		c, err = readNonSpace(br)
		if err != nil {
			return 0, scanEOF(err)
		}
		return c, nil
	}
}

// readNonSpace returns the next byte that is not JSON whitespace.
func readNonSpace(br *bufio.Reader) (byte, error) {
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return c, nil
		}
	}
}

// readNumber parses one number token. Fast path: the token and its
// delimiter sit inside the buffered window, so it is sliced and parsed
// in place with zero copies. A token straddling the window boundary (or
// an unbuffered reader) falls back to byte-wise accumulation.
func readNumber(br *bufio.Reader, idx int) (float64, error) {
	if br.Buffered() == 0 {
		// Prime the window; EOF here means the value was cut off.
		if _, err := br.Peek(1); err != nil {
			return 0, scanEOF(err)
		}
	}
	window, _ := br.Peek(br.Buffered())
	n := numRun(window)
	if n == 0 {
		return 0, fmt.Errorf("encode: timestamps[%d]: not a number (starts with %q)", idx, window[0])
	}
	if n < len(window) {
		v, err := parseFloat(window[:n])
		if err != nil {
			return 0, fmt.Errorf("encode: timestamps[%d]: %w", idx, err)
		}
		if _, err := br.Discard(n); err != nil {
			return 0, err
		}
		return v, nil
	}
	// Slow path: accumulate until a delimiter or EOF.
	tok := append(make([]byte, 0, n+32), window...)
	if _, err := br.Discard(n); err != nil {
		return 0, err
	}
	for {
		c, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if !numChar(c) {
			if err := br.UnreadByte(); err != nil {
				return 0, err
			}
			break
		}
		if len(tok) >= maxLineLen {
			return 0, fmt.Errorf("encode: timestamps[%d]: number exceeds %d bytes", idx, maxLineLen)
		}
		tok = append(tok, c)
	}
	v, err := parseFloat(tok)
	if err != nil {
		return 0, fmt.Errorf("encode: timestamps[%d]: %w", idx, err)
	}
	return v, nil
}

// numRun returns the length of the leading run of number-token bytes.
func numRun(b []byte) int {
	for i := 0; i < len(b); i++ {
		if !numChar(b[i]) {
			return i
		}
	}
	return len(b)
}

func numChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' || c == 'e' || c == 'E'
}

// scanEOF converts a clean EOF into unexpected-EOF: inside the array a
// truncated body is malformed, not done.
func scanEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// skipJSONValue consumes exactly one JSON value (scalar, object or
// array) from the decoder — how unknown sibling fields stream past
// without buffering the body.
func skipJSONValue(dec *json.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
		if depth == 0 {
			return nil
		}
	}
}

// badJSON labels decoder errors the way the old one-shot path did,
// while passing size-cap errors (http.MaxBytesError, ErrTooLarge)
// through unwrapped so the HTTP layer still maps them to 413.
func badJSON(err error) error {
	if err == io.EOF {
		return fmt.Errorf("bad JSON: unexpected end of body")
	}
	return err
}

// reset discards everything the writer accumulated, returning its
// chunks to the pool, so decoding can start over mid-stream (a
// duplicate "timestamps" key, where last-occurrence-wins semantics
// require dropping the first array).
func (w *batchWriter) reset() {
	for _, c := range w.batch.Chunks {
		putChunk(c)
	}
	w.batch = Batch{Sorted: true}
	w.cur = w.cur[:0]
	w.prev = math.Inf(-1)
}
