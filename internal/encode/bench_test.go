package encode

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"strconv"
	"testing"
)

// benchVals is one benchmark payload: 100k sorted microsecond epochs,
// the shape a high-rate workload ships.
func benchVals() []float64 { return testValsBench(100_000) }

func testValsBench(n int) []float64 {
	vals := make([]float64, n)
	t := 1.7e9
	for i := range vals {
		t += 0.001 + float64(i%7)*0.0001
		vals[i] = t
	}
	return vals
}

// BenchmarkDecodeJSONArray is the baseline the streaming formats are
// measured against: the legacy {"timestamps": [...]} body through
// encoding/json, materializing the full slice.
func BenchmarkDecodeJSONArray(b *testing.B) {
	body, err := json.Marshal(map[string][]float64{"timestamps": benchVals()})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req struct {
			Timestamps []float64 `json:"timestamps"`
		}
		if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
			b.Fatal(err)
		}
		if len(req.Timestamps) != 100_000 {
			b.Fatal("short decode")
		}
	}
}

func BenchmarkDecodeNDJSON(b *testing.B) {
	var buf bytes.Buffer
	for _, v := range benchVals() {
		// Microsecond precision, the shape real epoch producers emit.
		buf.WriteString(strconv.FormatFloat(v, 'f', 6, 64))
		buf.WriteByte('\n')
	}
	body := buf.Bytes()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := DecodeNDJSON(bytes.NewReader(body), nil)
		if err != nil {
			b.Fatal(err)
		}
		if batch.Count != 100_000 || !batch.Sorted {
			b.Fatal("bad decode")
		}
		batch.Release()
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	vals := benchVals()
	body := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(v))
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := DecodeBinary(bytes.NewReader(body), nil)
		if err != nil {
			b.Fatal(err)
		}
		if batch.Count != 100_000 || !batch.Sorted {
			b.Fatal("bad decode")
		}
		batch.Release()
	}
}

func BenchmarkParseFloatFast(b *testing.B) {
	line := []byte("1700000432.125")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parseFloat(line); err != nil {
			b.Fatal(err)
		}
	}
}
