package encode

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// collect flattens a batch and releases it.
func collect(t *testing.T, b *Batch) []float64 {
	t.Helper()
	if got := len(b.Flatten()); got != b.Count {
		t.Fatalf("Count = %d but Flatten returned %d values", b.Count, got)
	}
	out := b.Flatten()
	b.Release()
	return out
}

func ndjsonBody(vals []float64) []byte {
	var buf bytes.Buffer
	for _, v := range vals {
		fmt.Fprintf(&buf, "%g\n", v)
	}
	return buf.Bytes()
}

func binaryBody(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func gzipped(t *testing.T, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testVals produces a sorted series spanning multiple chunks so the
// chunk-boundary bookkeeping is exercised.
func testVals(n int) []float64 {
	vals := make([]float64, n)
	t := 1.7e9
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		t += rng.Float64()
		vals[i] = math.Round(t*1e6) / 1e6 // micros, like real epochs
	}
	return vals
}

func TestDecodeNDJSONRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, ChunkLen, ChunkLen + 1, 3*ChunkLen + 17} {
		vals := testVals(n)
		b, err := DecodeNDJSON(bytes.NewReader(ndjsonBody(vals)), nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !b.Sorted {
			t.Fatalf("n=%d: sorted stream not marked Sorted", n)
		}
		got := collect(t, b)
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d values", n, len(got))
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: value %d = %v, want %v", n, i, got[i], vals[i])
			}
		}
	}
}

func TestDecodeNDJSONFormats(t *testing.T) {
	// CRLF endings, blank lines, leading whitespace, no trailing
	// newline, scientific notation, and a line split across the 64 KiB
	// read window must all decode.
	long := strings.Repeat(" ", 30000) // a long (but legal) blank line
	body := "1\r\n\n  2.5\n" + long + "\n3e2\n-4.25"
	b, err := DecodeNDJSON(strings.NewReader(body), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, b)
	want := []float64{1, 2.5, 300, -4.25}
	if len(got) != len(want) {
		t.Fatalf("decoded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded %v, want %v", got, want)
		}
	}
	if b.Sorted {
		t.Fatal("descending stream marked Sorted")
	}
}

func TestDecodeNDJSONErrors(t *testing.T) {
	cases := []string{
		"1\nbogus\n3\n",
		"{\"t\": 1}\n", // objects are not the line format
		strings.Repeat("9", 2*maxLineLen),
	}
	for _, body := range cases {
		if _, err := DecodeNDJSON(strings.NewReader(body), nil); err == nil {
			t.Fatalf("body %.20q...: decode succeeded, want error", body)
		}
	}
}

func TestDecodeBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, ChunkLen, ChunkLen + 3} {
		vals := testVals(n)
		b, err := DecodeBinary(bytes.NewReader(binaryBody(vals)), nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !b.Sorted {
			t.Fatalf("n=%d: sorted stream not marked Sorted", n)
		}
		got := collect(t, b)
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d values", n, len(got))
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: value %d = %v, want %v", n, i, got[i], vals[i])
			}
		}
	}
}

func TestDecodeBinaryTruncated(t *testing.T) {
	body := binaryBody([]float64{1, 2, 3})
	if _, err := DecodeBinary(bytes.NewReader(body[:len(body)-3]), nil); err == nil {
		t.Fatal("truncated binary body accepted")
	}
}

func TestDecodeBinaryUnsorted(t *testing.T) {
	b, err := DecodeBinary(bytes.NewReader(binaryBody([]float64{5, 3, 9})), nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sorted {
		t.Fatal("out-of-order stream marked Sorted")
	}
	b.Release()
}

func TestCheckAbortsDecode(t *testing.T) {
	wantErr := errors.New("rejected")
	check := func(c []float64) error {
		for _, v := range c {
			if math.IsNaN(v) {
				return wantErr
			}
		}
		return nil
	}
	if _, err := DecodeBinary(bytes.NewReader(binaryBody([]float64{1, math.NaN(), 3})), check); !errors.Is(err, wantErr) {
		t.Fatalf("binary check error = %v, want %v", err, wantErr)
	}
	if _, err := DecodeNDJSON(strings.NewReader("1\nNaN\n3\n"), check); !errors.Is(err, wantErr) {
		t.Fatalf("ndjson check error = %v, want %v", err, wantErr)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	vals := testVals(2*ChunkLen + 5)
	zbody := gzipped(t, ndjsonBody(vals))
	zr, release, err := Gzip(bytes.NewReader(zbody))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	b, err := DecodeNDJSON(zr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, b); len(got) != len(vals) || got[0] != vals[0] {
		t.Fatalf("gzip round trip decoded %d values", len(got))
	}
	// The pooled reader must survive a second use.
	zr2, release2, err := Gzip(bytes.NewReader(zbody))
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	b2, err := DecodeNDJSON(zr2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Count != len(vals) {
		t.Fatalf("second pooled decode got %d values", b2.Count)
	}
	b2.Release()

	if _, _, err := Gzip(strings.NewReader("not gzip")); err == nil {
		t.Fatal("garbage accepted as gzip")
	}
}

func TestLimitReader(t *testing.T) {
	// Exactly at the limit: reads cleanly to EOF.
	got, err := io.ReadAll(LimitReader(strings.NewReader("12345678"), 8))
	if err != nil || string(got) != "12345678" {
		t.Fatalf("at-limit read = %q, %v", got, err)
	}
	// One byte over: ErrTooLarge.
	if _, err := io.ReadAll(LimitReader(strings.NewReader("123456789"), 8)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-limit err = %v, want ErrTooLarge", err)
	}
}

// TestParseFloatMatchesStrconv fuzzes the fast decimal path against the
// reference parser; the two must agree bit for bit.
func TestParseFloatMatchesStrconv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []string{
		"0", "-0", "1", "1.5", "-1.5", "1700000000.123456", "0.000001",
		"999999999999999", "123.", "1e5", "-2.5E-3", "0.1", "3.141592653589793",
	}
	for i := 0; i < 5000; i++ {
		switch i % 3 {
		case 0:
			cases = append(cases, strconv.FormatFloat(rng.Float64()*2e9, 'f', rng.Intn(9), 64))
		case 1:
			cases = append(cases, strconv.FormatFloat(rng.NormFloat64()*math.Pow(10, float64(rng.Intn(20)-5)), 'g', -1, 64))
		case 2:
			cases = append(cases, strconv.FormatInt(rng.Int63n(1e15), 10))
		}
	}
	for _, s := range cases {
		want, werr := strconv.ParseFloat(s, 64)
		got, gerr := parseFloat([]byte(s))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("parseFloat(%q) err = %v, strconv err = %v", s, gerr, werr)
		}
		if werr == nil && math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("parseFloat(%q) = %v (%x), strconv = %v (%x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// chunkedReader returns at most chunk bytes per Read, forcing lines to
// straddle read boundaries.
type chunkedReader struct {
	r     io.Reader
	chunk int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(p) > c.chunk {
		p = p[:c.chunk]
	}
	return c.r.Read(p)
}

func TestDecodeNDJSONAcrossReadBoundaries(t *testing.T) {
	vals := testVals(500)
	body := ndjsonBody(vals)
	for _, chunk := range []int{1, 7, 64, 1000} {
		b, err := DecodeNDJSON(&chunkedReader{r: bytes.NewReader(body), chunk: chunk}, nil)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		got := collect(t, b)
		if len(got) != len(vals) {
			t.Fatalf("chunk=%d: decoded %d values, want %d", chunk, len(got), len(vals))
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Fatalf("chunk=%d: value %d = %v, want %v", chunk, i, got[i], vals[i])
			}
		}
	}
}

func TestBatchReleaseRecycles(t *testing.T) {
	vals := testVals(ChunkLen + 10)
	b, err := DecodeBinary(bytes.NewReader(binaryBody(vals)), nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if b.Chunks != nil || b.Count != 0 {
		t.Fatalf("release left batch %+v", b)
	}
}
