package encode

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"strconv"
	"testing"
	"testing/iotest"
)

// checkBatch asserts the structural invariants every successful decode
// must uphold — chunk shape, count bookkeeping, and a Sorted flag that
// exactly matches the writer's definition (no value below its immediate
// predecessor) — then releases the batch and returns the flat values.
func checkBatch(t *testing.T, b *Batch) []float64 {
	t.Helper()
	if b == nil {
		t.Fatal("successful decode returned nil batch")
	}
	total := 0
	for i, c := range b.Chunks {
		if len(c) == 0 || len(c) > ChunkLen {
			t.Fatalf("chunk %d has %d values", i, len(c))
		}
		if i < len(b.Chunks)-1 && len(c) != ChunkLen {
			t.Fatalf("non-final chunk %d has %d values, want %d", i, len(c), ChunkLen)
		}
		total += len(c)
	}
	if total != b.Count {
		t.Fatalf("Count %d, chunks hold %d", b.Count, total)
	}
	vals := b.Flatten()
	sorted := true
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			sorted = false
		}
	}
	if b.Sorted != sorted {
		t.Fatalf("Sorted=%v, recomputed %v over %d values", b.Sorted, sorted, len(vals))
	}
	b.Release()
	if b.Chunks != nil || b.Count != 0 {
		t.Fatal("Release left state behind")
	}
	return vals
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// refNDJSON is the oracle for the NDJSON decoder: split on newlines,
// trim, skip blanks, strconv.ParseFloat every line. The fused fast path
// claims bit-exactness with strconv, so for bodies with no over-long
// line the decoder must agree with this exactly — in both directions.
func refNDJSON(body []byte) ([]float64, bool) {
	var out []float64
	for len(body) > 0 {
		var line []byte
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			line, body = body, nil
		}
		line = trimSpace(line)
		if len(line) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(string(line), 64)
		if err != nil {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

func FuzzDecodeNDJSON(f *testing.F) {
	f.Add([]byte("1\n2.5\n3e2\n"))
	f.Add([]byte("1\r\n\n  2.5\n-4.25"))
	f.Add([]byte("bogus\n"))
	f.Add([]byte(""))
	f.Add([]byte("99999999999999999999999999\n0.000001\n"))
	f.Add([]byte("NaN\nInf\n-Inf\n"))
	f.Add([]byte("+1\n-0.5\n.5\n5.\n"))
	f.Add([]byte("5\n3\n9\n"))
	f.Add([]byte("1.7976931348623157e308\n4.9e-324\n"))
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := DecodeNDJSON(bytes.NewReader(body), nil)
		var vals []float64
		if err == nil {
			vals = checkBatch(t, b)
		}
		// The 64 KiB line cap can fire on over-long bodies depending on
		// read chunking; the oracle only binds below it.
		if len(body) <= maxLineLen {
			want, ok := refNDJSON(body)
			if ok != (err == nil) {
				t.Fatalf("decode err=%v, strconv oracle ok=%v for %q", err, ok, body)
			}
			if ok && !sameFloats(vals, want) {
				t.Fatalf("decoded %v, oracle %v for %q", vals, want, body)
			}
			// Byte-at-a-time reads must not change the outcome: the
			// carry-across-read-boundary path is where scanners break.
			b2, err2 := DecodeNDJSON(iotest.OneByteReader(bytes.NewReader(body)), nil)
			if (err2 == nil) != (err == nil) {
				t.Fatalf("one-byte reads changed verdict: %v vs %v", err2, err)
			}
			if err2 == nil && !sameFloats(checkBatch(t, b2), vals) {
				t.Fatalf("one-byte reads changed values for %q", body)
			}
		}
	})
}

func FuzzDecodeBinary(f *testing.F) {
	le := func(vals ...float64) []byte {
		out := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out
	}
	f.Add([]byte(""))
	f.Add(le(1, 2, 3))
	f.Add(le(5, 3, 9))
	f.Add(le(math.NaN(), math.Inf(1), -1)[:20]) // truncated tail
	f.Add([]byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := DecodeBinary(bytes.NewReader(body), nil)
		if len(body)%8 != 0 {
			if err == nil {
				t.Fatalf("truncated body (%d bytes) accepted", len(body))
			}
			return
		}
		if err != nil {
			t.Fatalf("aligned body (%d bytes) rejected: %v", len(body), err)
		}
		vals := checkBatch(t, b)
		if len(vals) != len(body)/8 {
			t.Fatalf("decoded %d values from %d bytes", len(vals), len(body))
		}
		for i, v := range vals {
			if want := math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:])); math.Float64bits(v) != math.Float64bits(want) {
				t.Fatalf("value %d = %v, want %v", i, v, want)
			}
		}
		b2, err2 := DecodeBinary(iotest.OneByteReader(bytes.NewReader(body)), nil)
		if err2 != nil {
			t.Fatalf("one-byte reads rejected aligned body: %v", err2)
		}
		if !sameFloats(checkBatch(t, b2), vals) {
			t.Fatal("one-byte reads changed values")
		}
	})
}

func FuzzDecodeJSONArray(f *testing.F) {
	f.Add([]byte(`{"timestamps":[1,2,3]}`))
	f.Add([]byte(`{"timestamps":[]}`))
	f.Add([]byte(`{"timestamps":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"other":{"x":[1]},"timestamps":[1.5,2.5],"z":3}`))
	f.Add([]byte(`{"timestamps":[1],"timestamps":[2]}`))
	f.Add([]byte(`{"timestamps":[1],}`))
	f.Add([]byte(`{"timestamps":[3,1]} trailing`))
	f.Add([]byte(`{"timestamps":[1e3, 0.25,-7]}`))
	f.Add([]byte(`{"timestamps":"no"}`))
	f.Add([]byte(`[1,2]`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := DecodeJSONArray(bytes.NewReader(body), nil)
		var vals []float64
		if err == nil {
			vals = checkBatch(t, b)
		}
		b2, err2 := DecodeJSONArray(iotest.OneByteReader(bytes.NewReader(body)), nil)
		if (err2 == nil) != (err == nil) {
			t.Fatalf("one-byte reads changed verdict: %v vs %v", err2, err)
		}
		if err2 == nil && !sameFloats(checkBatch(t, b2), vals) {
			t.Fatalf("one-byte reads changed values for %q", body)
		}
		// One-directional oracle: anything the strict one-shot Unmarshal
		// accepts as an object, the streaming decoder must accept with the
		// same values. (The decoder is deliberately more lenient — number
		// spellings, trailing bytes — so the converse doesn't hold.)
		trimmed := bytes.TrimLeft(body, " \t\r\n")
		if len(trimmed) == 0 || trimmed[0] != '{' {
			return
		}
		var ref struct {
			Timestamps []float64 `json:"timestamps"`
		}
		if json.Unmarshal(body, &ref) != nil {
			return
		}
		if err != nil {
			t.Fatalf("strict-valid body rejected: %v (%q)", err, body)
		}
		if !sameFloats(vals, ref.Timestamps) && !(len(vals) == 0 && len(ref.Timestamps) == 0) {
			t.Fatalf("decoded %v, json.Unmarshal %v for %q", vals, ref.Timestamps, body)
		}
	})
}
