package fleet

// Live workload migration. A workload moves between nodes in two
// phases:
//
// Phase 1 — unpaused handoff. The source engine's state is serialized
// (MarshalStateSeq: the ordinary snapshot blob plus the durable-state
// generation and WAL sequence it captures) and restored into a fresh
// engine on the destination. Ingest keeps flowing to the source the
// whole time; whatever lands after the blob was cut is exactly what
// the source WAL records past the captured sequence.
//
// Phase 2 — gated catch-up and cutover. The workload's router gate is
// taken exclusively: in-flight requests drain, new ones block. If
// every state change since the handoff was an ingest (the state-gen
// delta equals the WAL-sequence delta), the destination catches up by
// replaying the source WAL tail — ApplyWALRecord idempotently skips
// records at or below the blob's sequence, so the pause costs O(tail),
// not O(history). If something else moved the state (a train, a
// config update — state-gen bumps without a WAL append), the blob is
// simply cut again inside the gate; rare, and always correct. Then the
// destination is made durable (snapshot) *before* the route table
// flips and the source forgets — a crash at any instant leaves at
// least one durable copy, and the router's boot reconciliation
// resolves the one window where both have one (destination wins: its
// copy is never behind, see pickDuplicateWinner). Finally the gate
// releases and requests flow to the new owner.
//
// Correctness is asserted end to end by TestMigrationBitIdentity:
// plans and forecasts from the destination are byte-identical to a
// reference engine fed the same acknowledged batches, under concurrent
// ingest, with zero acknowledged batches lost.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Sentinel migration errors, for HTTP status mapping and callers that
// care which precondition failed.
var (
	ErrUnknownWorkload = errors.New("unknown workload")
	ErrUnknownNode     = errors.New("unknown node")
	ErrMigrationBusy   = errors.New("migration already in progress")
)

// MigrationReport describes one completed migration.
type MigrationReport struct {
	Workload string `json:"workload"`
	From     string `json:"from"`
	To       string `json:"to"`
	// Noop is true when the workload already lived on the target.
	Noop bool `json:"noop,omitempty"`
	// TailRecords is how many WAL records the gated catch-up replayed
	// (0 when nothing landed between handoff and gate).
	TailRecords int `json:"tail_records"`
	// Remarshaled is true when a non-ingest mutation forced the gated
	// full re-handoff instead of a tail replay.
	Remarshaled bool `json:"remarshaled,omitempty"`
	// PauseSeconds is how long ingest was blocked (the gated phase).
	PauseSeconds float64 `json:"pause_seconds"`
	// Warning reports a post-cutover cleanup failure (the source's
	// forget-snapshot). The migration itself succeeded — the table
	// flipped and the destination is durable — so this is not an error:
	// boot reconciliation resolves the leftover duplicate in the
	// destination's favor, but operators may want to retry the source
	// snapshot.
	Warning string `json:"warning,omitempty"`
}

// MigrateWorkload moves one workload to the named destination node and
// pins it there. See the file comment for the protocol.
func (rt *Router) MigrateWorkload(id, dest string) (*MigrationReport, error) {
	start := time.Now()
	rep, err := rt.migrate(id, dest)
	switch {
	case err != nil:
		rt.migrations["error"].Inc()
	case rep.Noop:
		rt.migrations["noop"].Inc()
	case rep.Warning != "":
		// Completed, but post-cutover cleanup failed — distinct from
		// both "ok" and "error" so retry automation is not misled.
		rt.migrations["ok_source_snapshot_failed"].Inc()
		rt.migrationTime.Observe(time.Since(start).Seconds())
	default:
		rt.migrations["ok"].Inc()
		rt.migrationTime.Observe(time.Since(start).Seconds())
	}
	return rep, err
}

func (rt *Router) migrate(id, dest string) (*MigrationReport, error) {
	destNode, ok := rt.nodes[dest]
	if !ok {
		return nil, fmt.Errorf("fleet: %w: destination %q", ErrUnknownNode, dest)
	}
	if destNode.Registry() == nil {
		return nil, fmt.Errorf("fleet: destination %q is remote; in-process migration cannot reach its registry", dest)
	}
	if _, busy := rt.migrating.LoadOrStore(id, struct{}{}); busy {
		return nil, fmt.Errorf("fleet: %w for %q", ErrMigrationBusy, id)
	}
	defer rt.migrating.Delete(id)

	src := rt.table.Load().owner(id)
	srcNode := rt.nodes[src]
	if srcNode.Registry() == nil {
		return nil, fmt.Errorf("fleet: source %q is remote; in-process migration cannot reach its registry", src)
	}
	e, ok := srcNode.Registry().Get(id)
	if !ok {
		return nil, fmt.Errorf("fleet: %w: %q", ErrUnknownWorkload, id)
	}
	rep := &MigrationReport{Workload: id, From: src, To: dest}
	if src == dest {
		rep.Noop = true
		return rep, nil
	}

	// Phase 1: unpaused snapshot handoff.
	blob, gen1, seq1, err := e.MarshalStateSeq()
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal %q on %s: %w", id, src, err)
	}
	de, err := destNode.Registry().GetOrCreate(id)
	if err != nil {
		return nil, fmt.Errorf("fleet: create %q on %s: %w", id, dest, err)
	}
	cleanup := func() { destNode.Registry().Remove(id) }
	if err := de.RestoreState(blob); err != nil {
		cleanup()
		return nil, fmt.Errorf("fleet: restore %q on %s: %w", id, dest, err)
	}

	// Phase 2: gate, catch up, make durable, cut over.
	g := rt.gate(id)
	g.Lock()
	pauseStart := time.Now()
	unlock := func() {
		rep.PauseSeconds = time.Since(pauseStart).Seconds()
		rt.migrationPause.Observe(rep.PauseSeconds)
		g.Unlock()
	}

	gen2, seq2 := e.StateGenWALSeq()
	caughtUp := false
	if gen2-gen1 == seq2-seq1 {
		if seq2 == seq1 {
			caughtUp = true // nothing landed since the handoff
		} else if srcLog := srcNode.WALLog(id); srcLog != nil {
			// Replay feeds the whole on-disk log; ApplyWALRecord
			// discards everything at or below the blob's sequence, so
			// only the tail mutates the destination.
			if _, err := srcLog.Replay(func(seq uint64, ts []float64) error {
				if seq > seq1 {
					rep.TailRecords++
				}
				return de.ApplyWALRecord(seq, ts)
			}); err == nil {
				if _, destSeq := de.StateGenWALSeq(); destSeq == seq2 {
					caughtUp = true
				}
			}
		}
	}
	if !caughtUp {
		// A train/config/restore moved the state (or the tail replay
		// could not prove coverage, e.g. a concurrent source snapshot
		// truncated the log mid-read): cut the blob again, now that
		// the gate guarantees quiescence.
		rep.Remarshaled = true
		blob2, _, _, err := e.MarshalStateSeq()
		if err != nil {
			unlock()
			cleanup()
			return nil, fmt.Errorf("fleet: gated re-marshal %q on %s: %w", id, src, err)
		}
		if err := de.RestoreState(blob2); err != nil {
			unlock()
			cleanup()
			return nil, fmt.Errorf("fleet: gated restore %q on %s: %w", id, dest, err)
		}
	}

	// Durable handoff before the source forgets: a crash after the
	// source's registry drop but before its snapshot must still find
	// the workload somewhere durable. Per-workload, so the ingest pause
	// stays O(this workload) regardless of what else dest hosts.
	if err := destNode.SnapshotWorkload(id); err != nil {
		unlock()
		cleanup()
		return nil, fmt.Errorf("fleet: persisting %q on %s: %w", id, dest, err)
	}

	// Atomic cutover: new requests route to dest the moment the gate
	// releases.
	rt.pin(id, dest)
	srcNode.Registry().Remove(id) // drops its WAL and snapshot bookkeeping
	unlock()

	// Make the source's forget durable too — outside the gate. The
	// migration is already complete (table flipped, dest durable), so a
	// failure here is a warning, not an error: boot reconciliation
	// dedups in dest's favor if the stale copy ever resurfaces.
	if err := srcNode.SnapshotNow(); err != nil {
		rep.Warning = fmt.Sprintf("source %s snapshot failed after cutover: %v; its stale copy is resolved in %s's favor at next boot", src, err, dest)
	}
	return rep, nil
}

// handleMigrate is POST /v1/admin/migrate {"workload": "...", "to":
// "nodename"}.
func (rt *Router) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Workload string `json:"workload"`
		To       string `json:"to"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad migrate JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Workload == "" || req.To == "" {
		http.Error(w, `migrate needs "workload" and "to"`, http.StatusBadRequest)
		return
	}
	rep, err := rt.MigrateWorkload(req.Workload, req.To)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUnknownWorkload):
			code = http.StatusNotFound
		case errors.Is(err, ErrUnknownNode):
			code = http.StatusBadRequest
		case errors.Is(err, ErrMigrationBusy):
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSONStatus(w, http.StatusOK, rep)
}
