package fleet

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"robustscaler/internal/pipeline"
)

// The recommendation surface is a per-workload route: the router must
// forward it to the owning node, the autoscale sub-config set through
// the router must shape the decision there, and the stats composite
// must carry the pipeline state back out.
func TestRecommendationForwardsThroughRouter(t *testing.T) {
	rt, nodes, ts := newTestFleet(t, 3, nil)

	ids := make([]string, 9)
	for i := range ids {
		ids[i] = fmt.Sprintf("rec-%02d", i)
		var arr []float64
		for ti := 0.5; ti < testNow; ti += 40 {
			arr = append(arr, ti)
		}
		ingest(t, ts.URL, ids[i], arr...)
		resp := post(t, ts.URL+"/v1/workloads/"+ids[i]+"/train", "application/json", "{}")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train %s: %d", ids[i], resp.StatusCode)
		}
		resp.Body.Close()
	}

	for _, id := range ids {
		// Shape the decision via the router's config plane: a hard max.
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/workloads/"+id+"/config",
			strings.NewReader(`{"autoscale": {"min_replicas": 1, "max_replicas": 2}}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT autoscale config via router for %s: %d", id, resp.StatusCode)
		}
		resp.Body.Close()

		code, rec := getJSON[pipeline.Recommendation](t, ts.URL+"/v1/workloads/"+id+"/recommendation")
		if code != http.StatusOK {
			t.Fatalf("recommendation via router for %s: %d", id, code)
		}
		if rec.Workload != id || rec.Now != testNow {
			t.Fatalf("recommendation identity for %s: %+v", id, rec)
		}
		if rec.Desired < 1 || rec.Desired > 2 {
			t.Fatalf("behaviors set through the router did not reach the owner: %+v", rec)
		}

		// The decision lives on the owning node only.
		owner := rt.Owner(id)
		for _, nd := range nodes {
			e, ok := nd.Registry().Get(id)
			if !ok {
				continue
			}
			if nd.Name() != owner {
				t.Fatalf("workload %s found off-owner on %s", id, nd.Name())
			}
			st := nd.Server().Pipelines().For(id, e).Status()
			if st.LastRecommendation == nil || st.LastRecommendation.Desired != rec.Desired {
				t.Fatalf("owner %s pipeline state %+v != routed response %+v", owner, st.LastRecommendation, rec)
			}
		}

		// And the stats composite relays it through the router too.
		code, st := getJSON[struct {
			Autoscale *pipeline.Status `json:"autoscale"`
		}](t, ts.URL+"/v1/workloads/"+id+"/stats")
		if code != http.StatusOK || st.Autoscale == nil || st.Autoscale.LastRecommendation == nil {
			t.Fatalf("stats via router for %s: %d %+v", id, code, st.Autoscale)
		}
		if st.Autoscale.LastRecommendation.Desired != rec.Desired {
			t.Fatalf("stats decision %d != recommendation %d", st.Autoscale.LastRecommendation.Desired, rec.Desired)
		}
	}

	// Unknown workloads 404 through the router, same as every other
	// per-workload read.
	resp, err := http.Get(ts.URL + "/v1/workloads/nope/recommendation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recommendation for unknown workload: %d, want 404", resp.StatusCode)
	}
}
