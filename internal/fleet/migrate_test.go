package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"robustscaler/internal/engine"
	"robustscaler/internal/wal"
)

// newPersistentFleet builds n nodes with their own data dirs and WALs
// (fsync off: these tests prove protocol correctness, not durability
// timing) behind a router.
func newPersistentFleet(t *testing.T, n int) (*Router, []*Node, *httptest.Server, []string) {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	rt, nodes, ts := newTestFleet(t, n, func(i int, o *NodeOptions) {
		o.DataDir = dirs[i]
		o.WALFsync = wal.SyncOff
	})
	return rt, nodes, ts, dirs
}

func nodeByName(t *testing.T, nodes []*Node, name string) *Node {
	t.Helper()
	for _, nd := range nodes {
		if nd.Name() == name {
			return nd
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// otherNode picks any fleet member that is not `not`.
func otherNode(t *testing.T, rt *Router, not string) string {
	t.Helper()
	for _, name := range rt.Nodes() {
		if name != not {
			return name
		}
	}
	t.Fatalf("fleet has only %s", not)
	return ""
}

func TestMigrationMovesWorkloadAndPins(t *testing.T) {
	rt, nodes, ts, _ := newPersistentFleet(t, 2)
	ingest(t, ts.URL, "mover", 10, 20, 30)
	src := rt.Owner("mover")
	dest := otherNode(t, rt, src)

	rep, err := rt.MigrateWorkload("mover", dest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != src || rep.To != dest || rep.Noop || rep.Remarshaled {
		t.Fatalf("report: %+v", rep)
	}
	if rep.TailRecords != 0 {
		t.Fatalf("quiescent migration replayed %d tail records", rep.TailRecords)
	}
	if got := rt.Owner("mover"); got != dest {
		t.Fatalf("owner after migration: %s, want %s", got, dest)
	}
	if pins := rt.Pins(); pins["mover"] != dest {
		t.Fatalf("pins after migration: %v", pins)
	}
	if _, ok := nodeByName(t, nodes, src).Registry().Get("mover"); ok {
		t.Fatal("source still holds the workload")
	}
	e, ok := nodeByName(t, nodes, dest).Registry().Get("mover")
	if !ok {
		t.Fatal("destination does not hold the workload")
	}
	if got := e.Status().Arrivals; got != 3 {
		t.Fatalf("destination arrivals = %d, want 3", got)
	}
	// The router keeps serving the workload at its new home.
	ingest(t, ts.URL, "mover", 40, 50)
	code, st := getJSON[map[string]any](t, ts.URL+"/v1/workloads/mover/status")
	if code != http.StatusOK || st["arrivals_recorded"] != float64(5) {
		t.Fatalf("post-migration status via router: %d %v", code, st)
	}
	// Migration via the HTTP admin endpoint works too (and back again).
	resp := post(t, ts.URL+"/v1/admin/migrate", "application/json",
		fmt.Sprintf(`{"workload": "mover", "to": %q}`, src))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate endpoint: %d", resp.StatusCode)
	}
	if got := rt.Owner("mover"); got != src {
		t.Fatalf("owner after HTTP migrate back: %s, want %s", got, src)
	}
}

func TestMigrationErrors(t *testing.T) {
	rt, _, ts, _ := newPersistentFleet(t, 2)
	ingest(t, ts.URL, "here", 1, 2)
	owner := rt.Owner("here")

	if _, err := rt.MigrateWorkload("here", "mars"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown dest: %v", err)
	}
	if _, err := rt.MigrateWorkload("ghost", otherNode(t, rt, "")); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("unknown workload: %v", err)
	}
	rep, err := rt.MigrateWorkload("here", owner)
	if err != nil || !rep.Noop {
		t.Fatalf("self-migration: %+v, %v", rep, err)
	}
	// HTTP status mapping.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"workload": "ghost", "to": "` + owner + `"}`, http.StatusNotFound},
		{`{"workload": "here", "to": "mars"}`, http.StatusBadRequest},
		{`{"workload": "here"}`, http.StatusBadRequest},
		{`{nope`, http.StatusBadRequest},
	} {
		resp := post(t, ts.URL+"/v1/admin/migrate", "application/json", tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("migrate %s: %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

// The tentpole proof: migrating a workload under concurrent ingest
// loses nothing and changes nothing. Every acknowledged batch is
// present afterwards, and the destination's plans and forecasts are
// byte-identical to a reference engine fed the same batches on a
// single node that never migrated.
func TestMigrationBitIdentity(t *testing.T) {
	rt, nodes, ts, _ := newPersistentFleet(t, 3)
	const id = "identity"

	// Seed and train through the router, so the model is fitted before
	// the concurrent phase; nothing retrains afterwards (no retrainer),
	// so model parameters must survive the move bit-for-bit.
	seed := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		seed = append(seed, 1+float64(i)*7.5)
	}
	ingest(t, ts.URL, id, seed...)
	trainResp := post(t, ts.URL+"/v1/workloads/"+id+"/train", "application/json", "")
	trainResp.Body.Close()
	if trainResp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d", trainResp.StatusCode)
	}

	src := rt.Owner(id)
	dest := otherNode(t, rt, src)

	// Concurrent phase: G writers stream disjoint batches through the
	// router while the workload moves. Every 200 is an acknowledged,
	// durable batch — the migration must carry all of them.
	const (
		writers        = 4
		batchesPerW    = 30
		eventsPerBatch = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batchesPerW; b++ {
				ts0 := 10000 + float64(g)*1000 + float64(b)*30
				var buf bytes.Buffer
				fmt.Fprintf(&buf, `{"timestamps": [`)
				for e := 0; e < eventsPerBatch; e++ {
					if e > 0 {
						buf.WriteByte(',')
					}
					fmt.Fprintf(&buf, "%g", ts0+float64(e))
				}
				buf.WriteString("]}")
				resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/arrivals", "application/json", &buf)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d: status %d", g, b, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	// Move the workload mid-stream.
	rep, err := rt.MigrateWorkload(id, dest)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatalf("migration under ingest: %v", err)
	}
	if rep.To != dest {
		t.Fatalf("report: %+v", rep)
	}
	t.Logf("migration report: %+v", rep)

	// Zero acknowledged batches lost.
	total := len(seed) + writers*batchesPerW*eventsPerBatch
	de, ok := nodeByName(t, nodes, dest).Registry().Get(id)
	if !ok {
		t.Fatal("destination lost the workload")
	}
	if got := de.Status().Arrivals; got != total {
		t.Fatalf("destination arrivals = %d, want %d (acked batches lost)", got, total)
	}

	// Reference: one engine, same template (the node options' engine
	// config — per-workload seeds derive from the id, so a fresh node
	// births a bit-identical engine), fed the same batches in the same
	// macro order: seed, train, then the concurrent batches (their
	// inter-batch order doesn't matter — arrival history is a sorted
	// set and nothing retrains).
	refNode, err := NewNode("ref", NodeOptions{Engine: testEngineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { refNode.Close() })
	ref, err := refNode.Registry().GetOrCreate(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Ingest(seed); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Train(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < writers; g++ {
		for b := 0; b < batchesPerW; b++ {
			ts0 := 10000 + float64(g)*1000 + float64(b)*30
			batch := make([]float64, eventsPerBatch)
			for e := range batch {
				batch[e] = ts0 + float64(e)
			}
			if _, err := ref.Ingest(batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Align the RNG stream with the migrated copy: the destination's
	// engine went through RestoreState, which re-seeds deterministically;
	// round-trip the reference the same way.
	blob, _, _, err := ref.MarshalStateSeq()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RestoreState(blob); err != nil {
		t.Fatal(err)
	}

	// Bit identity: same call sequence on both engines.
	for _, span := range [][3]float64{{0, 3600, 60}, {1000, 90000, 300}} {
		a, err := de.ForecastJSON(span[0], span[1], span[2])
		if err != nil {
			t.Fatal(err)
		}
		b, err := ref.ForecastJSON(span[0], span[1], span[2])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("forecast %v diverged after migration:\n%s\nvs reference\n%s", span, a, b)
		}
	}
	for _, variant := range []string{"hp", "rt", "cost"} {
		req := engine.PlanRequest{Variant: variant, Target: 0.95, Horizon: 3600, Now: testNow, HasNow: true}
		if variant == "rt" {
			req.Target = 30 // seconds of wait budget
		}
		if variant == "cost" {
			req.Target = 120 // seconds of idle budget
		}
		got, err := de.Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Plan(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("plan %q diverged after migration:\n%+v\nvs reference\n%+v", variant, got, want)
		}
	}
	if a, b := de.Status(), ref.Status(); a.Arrivals != b.Arrivals || a.TrainedOn != b.TrainedOn ||
		a.PeriodSeconds != b.PeriodSeconds || a.RateNow != b.RateNow {
		t.Fatalf("status diverged: %+v vs %+v", a, b)
	}
}

// After a migration, restarting every node from disk and rebuilding
// the router must find the workload where the migration left it: data
// location wins over ring opinion, reported as a reassignment.
func TestMigrationSurvivesRestart(t *testing.T) {
	rt, _, ts, dirs := newPersistentFleet(t, 2)
	ingest(t, ts.URL, "sticky", 5, 6, 7)
	src := rt.Owner("sticky")
	dest := otherNode(t, rt, src)
	if _, err := rt.MigrateWorkload("sticky", dest); err != nil {
		t.Fatal(err)
	}
	names := rt.Nodes()
	for _, name := range names {
		if err := nodeByName(t, fleetNodes(rt), name).Close(); err != nil {
			t.Fatalf("closing %s: %v", name, err)
		}
	}

	// Reboot the same fleet from the same directories.
	reborn := make([]*Node, len(names))
	for i, name := range names {
		nd, err := NewNode(name, NodeOptions{Engine: testEngineCfg(), DataDir: dirs[i], WALFsync: wal.SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		reborn[i] = nd
	}
	rt2, err := NewRouter(reborn, RouterOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Owner("sticky"); got != dest {
		t.Fatalf("owner after restart: %s, want %s (pins %v)", got, dest, rt2.Pins())
	}
	var found bool
	for _, ra := range rt2.Reassignments() {
		if ra.Workload == "sticky" && ra.Node == dest {
			found = true
		}
	}
	if !found {
		t.Fatalf("boot reconciliation silent about the moved workload: %+v", rt2.Reassignments())
	}
	e, ok := nodeByName(t, reborn, dest).Registry().Get("sticky")
	if !ok {
		t.Fatal("restarted destination lost the workload")
	}
	if got := e.Status().Arrivals; got != 3 {
		t.Fatalf("arrivals after restart = %d, want 3", got)
	}
}

// Route-table cutover is a clone-and-swap on a shared atomic pointer;
// without serialized writers, two concurrent migrations of different
// workloads could each clone the same table and the second swap would
// silently drop the first's pin — routing that workload back to a node
// that just forgot it. Hammer concurrent migrations and assert every
// pin survives and placement agrees with the table.
func TestConcurrentMigrationsKeepAllPins(t *testing.T) {
	rt, nodes, ts := newTestFleet(t, 3, nil)
	ids := []string{"cm-a", "cm-b", "cm-c", "cm-d"}
	for _, id := range ids {
		ingest(t, ts.URL, id, 1, 2, 3)
	}
	names := rt.Nodes()
	for round := 0; round < 6; round++ {
		want := make(map[string]string, len(ids))
		var wg sync.WaitGroup
		errs := make(chan error, len(ids))
		for i, id := range ids {
			dest := names[(round+i)%len(names)]
			want[id] = dest
			wg.Add(1)
			go func(id, dest string) {
				defer wg.Done()
				if _, err := rt.MigrateWorkload(id, dest); err != nil {
					errs <- fmt.Errorf("migrating %s to %s: %w", id, dest, err)
				}
			}(id, dest)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for id, dest := range want {
			if got := rt.Owner(id); got != dest {
				t.Fatalf("round %d: %s routes to %s, want %s (a concurrent cutover dropped the pin; pins %v)",
					round, id, got, dest, rt.Pins())
			}
			for _, nd := range nodes {
				_, hosts := nd.Registry().Get(id)
				if hosts != (nd.Name() == dest) {
					t.Fatalf("round %d: %s hosted on %s=%v, want owner %s only",
						round, id, nd.Name(), hosts, dest)
				}
			}
		}
	}
}

// fleetNodes recovers the *Node values behind a router for test
// teardown bookkeeping.
func fleetNodes(rt *Router) []*Node {
	out := make([]*Node, 0, len(rt.order))
	for _, name := range rt.order {
		out = append(out, rt.nodes[name])
	}
	return out
}
