package fleet

// The Router is the fleet's single HTTP front: per-workload routes are
// forwarded to the owning node (consistent-hash ring, overridable per
// workload by migration pins), fleet-wide routes are scatter-gathered
// across every node, and a per-node passthrough under /v1/nodes/{node}
// exposes each member's full surface for targeted operations.
//
// Routing state is a copy-on-write table behind an atomic pointer —
// the forward hot path loads it with one atomic read and never takes a
// fleet-wide lock. Per-workload RWMutex gates serialize requests
// against a migration's final cutover: requests hold the gate shared,
// the migration's tail phase holds it exclusive, so ingest to a moving
// workload pauses only for the tail replay.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"robustscaler/internal/httpmetrics"
	"robustscaler/internal/metrics"
	"robustscaler/internal/ring"
)

// DefaultFanout bounds how many nodes a scatter-gather queries
// concurrently when RouterOptions leaves Fanout zero.
const DefaultFanout = 8

// RouterOptions configures ring geometry and scatter concurrency.
type RouterOptions struct {
	// VirtualNodes and Seed parameterize workload placement (see
	// internal/ring). Every router over the same fleet must use the
	// same values or placement diverges.
	VirtualNodes int
	Seed         uint64
	// Fanout bounds concurrent per-node requests during a
	// scatter-gather; 0 means DefaultFanout.
	Fanout int
}

// routeTable is the immutable routing state: the ring plus per-workload
// pins that override it (migration destinations, boot reconciliation).
// Mutations clone, never edit in place.
type routeTable struct {
	ring *ring.Ring
	pins map[string]string // workload id → node name
}

func (t *routeTable) owner(id string) string {
	if n, ok := t.pins[id]; ok {
		return n
	}
	n, _ := t.ring.Owner(id) // the ring is never empty: NewRouter requires ≥1 node
	return n
}

// withPin returns a clone routing id to node; a pin matching the ring
// owner is dropped rather than stored (the table stays minimal, and
// Pins() reports only true overrides).
func (t *routeTable) withPin(id, node string) *routeTable {
	c := &routeTable{ring: t.ring, pins: make(map[string]string, len(t.pins)+1)}
	for k, v := range t.pins {
		c.pins[k] = v
	}
	if owner, _ := t.ring.Owner(id); owner == node {
		delete(c.pins, id)
	} else {
		c.pins[id] = node
	}
	return c
}

// Reassignment records one boot-reconciliation decision (see
// NewRouter).
type Reassignment struct {
	Workload string
	// Node is where the workload's data actually lives (pinned there
	// when it differs from the ring owner).
	Node string
	// DroppedFrom lists nodes whose duplicate copy lost the tie-break
	// and was dropped from their in-memory registry.
	DroppedFrom []string
}

// Router fronts a set of fleet nodes. Create with NewRouter; safe for
// concurrent use.
type Router struct {
	nodes map[string]*Node
	order []string // node names, presentation order

	table atomic.Pointer[routeTable]
	// tableMu serializes route-table writers. Readers stay lock-free on
	// the atomic pointer; writers clone-and-swap, and without mutual
	// exclusion two concurrent migrations would each Load the same
	// table and the second Store would discard the first's pin.
	tableMu sync.Mutex
	// gates holds one *sync.RWMutex per workload id that can interact
	// with a migration: requests take it shared, a migration cutover
	// exclusive. Entries are never removed — a mutex is ~24 bytes — so
	// allocation is restricted to ids the fleet actually hosts (or
	// requests that create one); see forward, which leaves garbage ids
	// ungated rather than growing this map without bound.
	gates sync.Map
	// migrating marks workload ids with a migration in flight, so a
	// second concurrent migration of the same workload is refused
	// instead of interleaved.
	migrating sync.Map

	fanout  int
	reg     *metrics.Registry
	handler http.Handler

	reassigned []Reassignment // boot reconciliation, for logs and tests

	forwards       map[string]*metrics.Counter   // per node
	scatterSeconds map[string]*metrics.Histogram // per fleet route
	migrations     map[string]*metrics.Counter   // by result
	migrationTime  *metrics.Histogram
	migrationPause *metrics.Histogram
}

// NewRouter builds the routing layer over nodes. Placement starts from
// the configured ring; then, for every workload already present in an
// in-process node's registry, the router reconciles ring opinion with
// reality: a workload living off its ring owner (an old migration, or
// a membership change across restarts) is pinned to the node that
// holds it, and a workload found on several nodes (a crash between a
// migration's durable handoff and the source's durable forget) keeps
// the copy with the most arrivals — ties break to the ring owner, then
// lexicographically — and the losers drop theirs. Data location wins
// over hash opinion, always; the ring only decides where *new*
// workloads go.
func NewRouter(nodes []*Node, opts RouterOptions) (*Router, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one node")
	}
	rt := &Router{
		nodes:  make(map[string]*Node, len(nodes)),
		fanout: opts.Fanout,
		reg:    metrics.NewRegistry(),
	}
	if rt.fanout <= 0 {
		rt.fanout = DefaultFanout
	}
	rg := ring.New(ring.Config{VirtualNodes: opts.VirtualNodes, Seed: opts.Seed})
	for _, n := range nodes {
		if _, dup := rt.nodes[n.Name()]; dup {
			return nil, fmt.Errorf("fleet: duplicate node name %q", n.Name())
		}
		rt.nodes[n.Name()] = n
		rt.order = append(rt.order, n.Name())
		if err := rg.Add(n.Name()); err != nil {
			return nil, err
		}
	}
	tbl := &routeTable{ring: rg, pins: map[string]string{}}
	rt.reconcile(tbl)
	rt.table.Store(tbl)
	rt.initMetrics()
	rt.handler = rt.buildMux()
	return rt, nil
}

// reconcile pins every already-present workload to the node that holds
// its data and resolves duplicates (NewRouter doc). Mutates tbl, which
// is pre-publication here.
func (rt *Router) reconcile(tbl *routeTable) {
	holders := map[string][]string{} // workload → node names, rt.order order
	for _, name := range rt.order {
		reg := rt.nodes[name].Registry()
		if reg == nil {
			continue // remote node: its inventory is not ours to scan
		}
		for _, id := range reg.Workloads() {
			holders[id] = append(holders[id], name)
		}
	}
	ids := make([]string, 0, len(holders))
	for id := range holders {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic reassignment order
	for _, id := range ids {
		hosts := holders[id]
		ringOwner, _ := tbl.ring.Owner(id)
		winner := hosts[0]
		if len(hosts) > 1 {
			winner = rt.pickDuplicateWinner(id, hosts, ringOwner)
		}
		var dropped []string
		for _, h := range hosts {
			if h == winner {
				continue
			}
			rt.nodes[h].Registry().Remove(id) // durable at that node's next snapshot
			dropped = append(dropped, h)
		}
		if winner != ringOwner {
			tbl.pins[id] = winner
		}
		if winner != ringOwner || dropped != nil {
			rt.reassigned = append(rt.reassigned, Reassignment{Workload: id, Node: winner, DroppedFrom: dropped})
		}
	}
}

// pickDuplicateWinner chooses which duplicate copy of a workload
// survives: most arrivals first (a migration destination is always ≥
// the source it copied), then the ring owner, then the
// lexicographically first host. With equal arrival counts the copies
// are interchangeable — a migration's gate guarantees the destination
// matched the source before the source could have forgotten anything.
func (rt *Router) pickDuplicateWinner(id string, hosts []string, ringOwner string) string {
	sorted := append([]string(nil), hosts...)
	sort.Strings(sorted)
	winner, best := "", -1
	for _, h := range sorted {
		e, ok := rt.nodes[h].Registry().Get(id)
		if !ok {
			continue
		}
		n := e.Status().Arrivals
		better := n > best
		if n == best && h == ringOwner {
			better = true
		}
		if better {
			winner, best = h, n
		}
	}
	return winner
}

// Reassignments returns the boot-reconciliation decisions NewRouter
// made, for the caller to log.
func (rt *Router) Reassignments() []Reassignment { return rt.reassigned }

// Handler returns the router's HTTP surface — the fleet's single
// front.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Metrics returns the router's own registry (fleet gauges, router
// route metrics). Node registries stay per-node; GET /metrics merges
// all of them.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Nodes returns the member names in presentation order.
func (rt *Router) Nodes() []string { return append([]string(nil), rt.order...) }

// Owner returns the node currently routing the workload (pin or ring).
func (rt *Router) Owner(id string) string { return rt.table.Load().owner(id) }

// Pins returns the current pin set (workloads routed off their ring
// owner).
func (rt *Router) Pins() map[string]string {
	pins := rt.table.Load().pins
	out := make(map[string]string, len(pins))
	for k, v := range pins {
		out[k] = v
	}
	return out
}

// gate returns the workload's RWMutex, creating it on first touch.
func (rt *Router) gate(id string) *sync.RWMutex {
	if g, ok := rt.gates.Load(id); ok {
		return g.(*sync.RWMutex)
	}
	g, _ := rt.gates.LoadOrStore(id, &sync.RWMutex{})
	return g.(*sync.RWMutex)
}

// pin atomically reroutes id to node in the copy-on-write route table.
func (rt *Router) pin(id, node string) {
	rt.tableMu.Lock()
	rt.table.Store(rt.table.Load().withPin(id, node))
	rt.tableMu.Unlock()
}

// buildMux wires the fleet routes. Per-workload routes share one
// forward handler; its route label is the mux pattern, so workload IDs
// never become label values (same cardinality rule as the node mux).
func (rt *Router) buildMux() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, httpmetrics.Wrap(rt.reg, pattern, h))
	}
	handle("GET /healthz", rt.handleHealth)
	handle("GET /metrics", rt.handleMetrics)
	handle("GET /v1/workloads", rt.handleList)
	handle("PUT /v1/admin/config", rt.handleBulkConfig)
	handle("POST /v1/admin/snapshot", rt.handleScatterAdmin("POST", "/v1/admin/snapshot"))
	handle("GET /v1/admin/generations", rt.handleScatterAdmin("GET", "/v1/admin/generations"))
	handle("POST /v1/admin/restore-generation", func(w http.ResponseWriter, _ *http.Request) {
		// Snapshot generations are per-node timelines; one number can
		// not name a consistent fleet-wide state. Restore per node.
		http.Error(w, "restore-generation is a per-node operation in fleet mode: "+
			"POST /v1/nodes/{node}/v1/admin/restore-generation", http.StatusBadRequest)
	})
	handle("GET /v1/admin/fleet", rt.handleFleet)
	handle("POST /v1/admin/migrate", rt.handleMigrate)
	handle("/v1/nodes/{node}/{rest...}", rt.handlePassthrough)
	handle("/v1/workloads/{id}", rt.forward)
	handle("/v1/workloads/{id}/{rest...}", rt.forward)
	return mux
}

// forward sends a per-workload request to its owning node. The gate is
// held shared for the whole node round-trip: a migration cutover
// (exclusive) therefore waits for in-flight requests and blocks new
// ones until the workload's new home is live.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		http.Error(w, "missing workload id", http.StatusNotFound)
		return
	}
	if g := rt.gateFor(id, r); g != nil {
		g.RLock()
		defer g.RUnlock()
	}
	node := rt.table.Load().owner(id)
	rt.forwards[node].Inc()
	rt.nodes[node].Handler().ServeHTTP(w, r)
}

// gateFor returns the gate a forwarded request must hold shared,
// allocating one only for ids a migration could involve: ids whose
// owning in-process node hosts them, and requests able to create a
// workload (POST .../arrivals). Anything else — a GET for an id nobody
// hosts, a config PUT about to 404 at the node — forwards ungated and
// allocates nothing: the id space here is the unauthenticated request
// space, and a permanent mutex per garbage id would grow router memory
// without bound. Ungated is safe because migrations only move
// workloads that exist — if the owner does not host the id and the
// request cannot create it, no cutover can race this forward. (A
// remote-owned id is likewise ungated: in-process migration cannot
// reach a remote registry at all.)
func (rt *Router) gateFor(id string, r *http.Request) *sync.RWMutex {
	if g, ok := rt.gates.Load(id); ok {
		return g.(*sync.RWMutex)
	}
	if r.Method == http.MethodPost && r.PathValue("rest") == "arrivals" {
		return rt.gate(id)
	}
	if reg := rt.nodes[rt.table.Load().owner(id)].Registry(); reg != nil {
		if _, ok := reg.Get(id); ok {
			return rt.gate(id)
		}
	}
	return nil
}

// handlePassthrough relays a request to one named node with the
// /v1/nodes/{node} prefix stripped: the operator's direct line to a
// member (per-node metrics, per-node generations, point-in-time
// restore). The passthrough addresses a node, not a workload, so it
// bypasses the route table and the migration gates — which is exactly
// why workload writes are refused here: a write landing on the former
// owner during or after a migration would silently recreate a
// divergent copy that boot dedup later discards. Workload reads are
// allowed (useful for verifying a specific member's view); workload
// mutations must go through the routed /v1/workloads endpoints.
func (rt *Router) handlePassthrough(w http.ResponseWriter, r *http.Request) {
	node, ok := rt.nodes[r.PathValue("node")]
	if !ok {
		http.Error(w, "unknown node", http.StatusNotFound)
		return
	}
	rest := "/" + r.PathValue("rest")
	if r.Method != http.MethodGet && r.Method != http.MethodHead &&
		strings.HasPrefix(rest, "/v1/workloads/") {
		http.Error(w, "node passthrough is read/admin-only: workload writes bypass "+
			"the route table and migration gates; use /v1/workloads/... on the router",
			http.StatusForbidden)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = rest
	r2.URL.RawPath = ""
	node.Handler().ServeHTTP(w, r2)
}
