package fleet

// Scatter-gather: fleet-wide endpoints query every node concurrently
// (bounded fan-out) through each node's http.Handler — the same
// boundary forwarding uses, so a remote node participates in
// aggregation exactly like an in-process one — and merge the
// responses into a single fleet document.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"robustscaler/internal/server"
)

// nodeResponse is one node's reply inside a scatter.
type nodeResponse struct {
	node   string
	status int
	body   []byte
}

// recorder is a minimal in-process http.ResponseWriter; the stdlib's
// httptest.ResponseRecorder is deliberately not imported outside
// tests.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func newRecorder() *recorder { return &recorder{header: make(http.Header), code: http.StatusOK} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *recorder) WriteHeader(code int)        { r.code = code }

// scatter sends method+path (with body, when non-nil) to every node,
// at most rt.fanout concurrently, and returns responses in node
// presentation order. ctx aborts stragglers for remote nodes;
// in-process handlers are fast enough that we simply wait.
func (rt *Router) scatter(ctx context.Context, method, path string, body []byte, contentType string) []nodeResponse {
	start := time.Now()
	out := make([]nodeResponse, len(rt.order))
	sem := make(chan struct{}, rt.fanout)
	var wg sync.WaitGroup
	for i, name := range rt.order {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var rd *bytes.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			} else {
				rd = bytes.NewReader(nil)
			}
			req, err := http.NewRequestWithContext(ctx, method, path, rd)
			if err != nil {
				out[i] = nodeResponse{node: name, status: http.StatusInternalServerError, body: []byte(err.Error())}
				return
			}
			if contentType != "" {
				req.Header.Set("Content-Type", contentType)
			}
			rec := newRecorder()
			rt.nodes[name].Handler().ServeHTTP(rec, req)
			out[i] = nodeResponse{node: name, status: rec.code, body: rec.body.Bytes()}
		}(i, name)
	}
	wg.Wait()
	if h, ok := rt.scatterSeconds[path]; ok {
		h.Observe(time.Since(start).Seconds())
	}
	return out
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// asJSON re-decodes a node's JSON body so it nests as an object rather
// than an escaped string; non-JSON bodies (plain-text errors) are
// passed through as trimmed strings.
func asJSON(body []byte) any {
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		return string(bytes.TrimSpace(body))
	}
	return v
}

// handleHealth aggregates every node's /healthz. Fleet status is the
// worst member status: any non-"ok" node (quarantined boot casualties,
// failing snapshots) degrades the fleet report, and any node that
// answers 503 makes the fleet answer 503 — same contract an
// orchestrator already has with a single scalerd, lifted over N.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	resps := rt.scatter(r.Context(), http.MethodGet, "/healthz", nil, "")
	code := http.StatusOK
	status := "ok"
	nodes := make(map[string]any, len(resps))
	for _, nr := range resps {
		detail := map[string]any{"http_status": nr.status, "report": asJSON(nr.body)}
		nodes[nr.node] = detail
		if nr.status != http.StatusOK {
			code = http.StatusServiceUnavailable
			status = "degraded"
			continue
		}
		if rep, ok := asJSON(nr.body).(map[string]any); ok {
			if s, _ := rep["status"].(string); s != "" && s != "ok" {
				status = "degraded"
			}
		}
	}
	writeJSONStatus(w, code, map[string]any{
		"status": status,
		"nodes":  nodes,
	})
}

// handleList merges every node's workload list into one sorted,
// deduplicated fleet list — the same response shape a single node
// serves, so clients need not care whether they talk to a node or the
// fleet.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	resps := rt.scatter(r.Context(), http.MethodGet, "/v1/workloads", nil, "")
	seen := map[string]bool{}
	for _, nr := range resps {
		if nr.status != http.StatusOK {
			http.Error(w, "node "+nr.node+" failed to list: "+string(nr.body), http.StatusInternalServerError)
			return
		}
		var body struct {
			Workloads []string `json:"workloads"`
		}
		if err := json.Unmarshal(nr.body, &body); err != nil {
			http.Error(w, "node "+nr.node+" list unreadable: "+err.Error(), http.StatusInternalServerError)
			return
		}
		for _, id := range body.Workloads {
			seen[id] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	writeJSONStatus(w, http.StatusOK, map[string]any{"workloads": ids})
}

// handleScatterAdmin fans an admin request out to every node and
// reports per-node outcomes. Overall status: 200 when every node
// succeeded, 500 when any node failed server-side, otherwise the
// first non-2xx code (e.g. 409 everywhere when no node has a store).
func (rt *Router) handleScatterAdmin(method, path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		resps := rt.scatter(r.Context(), method, path, nil, "")
		code := http.StatusOK
		nodes := make(map[string]any, len(resps))
		for _, nr := range resps {
			nodes[nr.node] = map[string]any{"http_status": nr.status, "report": asJSON(nr.body)}
			switch {
			case nr.status >= 500:
				code = http.StatusInternalServerError
			case nr.status >= 300 && code == http.StatusOK:
				code = nr.status
			}
		}
		writeJSONStatus(w, code, map[string]any{"nodes": nodes})
	}
}

// handleBulkConfig scatters the bulk config update to every node and
// merges the per-node scoreboards. Each node applies the merge to the
// targets it hosts and reports 404 for explicit targets it does not;
// a workload is "found" fleet-wide if any node accepted it, and
// "not found" only if every node said 404.
func (rt *Router) handleBulkConfig(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return // readBody already answered
	}
	resps := rt.scatter(r.Context(), http.MethodPut, "/v1/admin/config", body, "application/json")
	merged := server.BulkConfigResponse{Results: map[string]server.BulkConfigResult{}}
	for _, nr := range resps {
		if nr.status != http.StatusOK {
			// Request-level rejects (bad JSON, bad glob, version in
			// bulk) are identical on every node; relay the first.
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(nr.status)
			w.Write(nr.body)
			return
		}
		var resp server.BulkConfigResponse
		if err := json.Unmarshal(nr.body, &resp); err != nil {
			http.Error(w, "node "+nr.node+" bulk response unreadable: "+err.Error(), http.StatusInternalServerError)
			return
		}
		merged.Matched += resp.Matched
		merged.Updated += resp.Updated
		for id, res := range resp.Results {
			prev, seen := merged.Results[id]
			// Keep the most meaningful result: any real outcome beats
			// a 404 (the workload just lives elsewhere).
			if !seen || (prev.Code == http.StatusNotFound && !prev.OK) {
				merged.Results[id] = res
			}
		}
	}
	writeJSONStatus(w, http.StatusOK, merged)
}

// handleFleet reports the fleet topology: members, ring geometry and
// analytic ownership shares, pins, and where every live workload
// currently routes. This is the migration runbook's map.
func (rt *Router) handleFleet(w http.ResponseWriter, _ *http.Request) {
	tbl := rt.table.Load()
	shares := tbl.ring.Shares()
	nodes := make([]map[string]any, 0, len(rt.order))
	placement := map[string]string{}
	for _, name := range rt.order {
		info := map[string]any{
			"name":       name,
			"ring_share": shares[name],
			"remote":     rt.nodes[name].Registry() == nil,
		}
		if reg := rt.nodes[name].Registry(); reg != nil {
			ids := reg.Workloads()
			sort.Strings(ids)
			info["workloads"] = len(ids)
			for _, id := range ids {
				placement[id] = name
			}
		}
		nodes = append(nodes, info)
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{
		"nodes": nodes,
		"ring": map[string]any{
			"virtual_nodes": tbl.ring.VirtualNodes(),
			"seed":          tbl.ring.Seed(),
		},
		"pins":      rt.Pins(),
		"workloads": placement,
	})
}

// readBody slurps a request body with a sane cap, answering the
// request itself on failure.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return nil, err
	}
	return buf.Bytes(), nil
}
