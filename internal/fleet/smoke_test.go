package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestFleetSmokeN4 runs a 4-node fleet under concurrent mixed load —
// ingest, reads, fleet-wide scatters, and live migrations — and checks
// nothing is lost. Its real teeth come from `go test -race`: every
// router data structure (route table, gates, metrics, scatter fan-out)
// is exercised from many goroutines at once.
func TestFleetSmokeN4(t *testing.T) {
	rt, nodes, ts := newTestFleet(t, 4, nil)
	const (
		workloads = 12
		writers   = 4
		batches   = 25
	)
	ids := make([]string, workloads)
	for i := range ids {
		ids[i] = fmt.Sprintf("smoke-%02d", i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+3)

	// Writers: disjoint timestamp ranges per (writer, batch) so the
	// final per-workload count is exact.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				id := ids[(g+b)%workloads]
				// Disjoint per (writer, batch) but tightly packed: the
				// whole spread must fit the engine's history window or
				// trimming masquerades as loss.
				base := 1000 + float64(g)*2000 + float64(b)*50
				body := fmt.Sprintf(`{"timestamps": [%g, %g]}`, base, base+1)
				resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/arrivals", "application/json",
					strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d on %s: %d", g, b, id, resp.StatusCode)
					return
				}
			}
		}(g)
	}

	// Readers: per-workload status plus every scatter route.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			for _, path := range []string{
				"/v1/workloads/" + ids[i%workloads] + "/status",
				"/v1/workloads",
				"/healthz",
				"/metrics",
				"/v1/admin/fleet",
			} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Errorf("GET %s: %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()

	// Migrator: bounce a few workloads around the ring while everything
	// else is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		names := rt.Nodes()
		for i := 0; i < 10; i++ {
			id := ids[i%workloads]
			dest := names[i%len(names)]
			if _, err := rt.MigrateWorkload(id, dest); err != nil {
				// Unknown workload is fine — the writer may not have
				// created it yet; anything else is a real failure.
				if !isBenign(err) {
					errs <- fmt.Errorf("migrate %s to %s: %w", id, dest, err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Exactness: every acknowledged batch landed exactly once, wherever
	// each workload ended up.
	want := map[string]int{}
	for g := 0; g < writers; g++ {
		for b := 0; b < batches; b++ {
			want[ids[(g+b)%workloads]] += 2
		}
	}
	for _, id := range ids {
		code, st := getJSON[map[string]any](t, ts.URL+"/v1/workloads/"+id+"/status")
		if code != http.StatusOK {
			t.Fatalf("status %s after smoke: %d", id, code)
		}
		if got := st["arrivals_recorded"]; got != float64(want[id]) {
			t.Fatalf("%s arrivals = %v, want %d", id, got, want[id])
		}
		// Exactly one node holds it.
		holders := 0
		for _, nd := range nodes {
			if _, ok := nd.Registry().Get(id); ok {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("%s held by %d nodes after smoke", id, holders)
		}
	}
}

func isBenign(err error) bool {
	return errors.Is(err, ErrUnknownWorkload) || errors.Is(err, ErrMigrationBusy)
}
