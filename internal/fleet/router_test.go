package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"robustscaler/internal/server"
)

const testNow = 100000.0

func testEngineCfg() *server.Config {
	cfg := server.DefaultConfig()
	cfg.MCSamples = 200
	cfg.Now = func() float64 { return testNow }
	return &cfg
}

// newTestFleet builds n in-memory nodes behind a router and serves it.
func newTestFleet(t *testing.T, n int, tweak func(i int, o *NodeOptions)) (*Router, []*Node, *httptest.Server) {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		opts := NodeOptions{Engine: testEngineCfg()}
		if tweak != nil {
			tweak(i, &opts)
		}
		nd, err := NewNode(fmt.Sprintf("n%d", i), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		nodes[i] = nd
	}
	rt, err := NewRouter(nodes, RouterOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, nodes, ts
}

func post(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func ingest(t *testing.T, base, id string, ts ...float64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"timestamps": ts})
	resp := post(t, base+"/v1/workloads/"+id+"/arrivals", "application/json", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: %d", id, resp.StatusCode)
	}
}

func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, v
}

// Workloads ingested through the router must land on exactly the node
// the ring names, and every per-workload route must reach them there.
func TestForwardPlacesWorkloadsOnOwners(t *testing.T) {
	rt, nodes, ts := newTestFleet(t, 4, nil)
	ids := make([]string, 32)
	for i := range ids {
		ids[i] = fmt.Sprintf("svc-%02d", i)
		ingest(t, ts.URL, ids[i], 1, 2, 3)
	}
	placed := 0
	for _, id := range ids {
		owner := rt.Owner(id)
		for _, nd := range nodes {
			_, ok := nd.Registry().Get(id)
			if nd.Name() == owner {
				if !ok {
					t.Fatalf("workload %s missing on its owner %s", id, owner)
				}
				placed++
			} else if ok {
				t.Fatalf("workload %s leaked onto non-owner %s", id, nd.Name())
			}
		}
		// Reads route to the same place.
		code, status := getJSON[map[string]any](t, ts.URL+"/v1/workloads/"+id+"/status")
		if code != http.StatusOK || status["arrivals_recorded"] != float64(3) {
			t.Fatalf("status via router for %s: %d %v", id, code, status)
		}
	}
	if placed != len(ids) {
		t.Fatalf("placed %d of %d workloads", placed, len(ids))
	}
	// With 4 nodes and 32 workloads every node should own some.
	for _, nd := range nodes {
		if nd.Registry().Len() == 0 {
			t.Fatalf("node %s owns nothing — ring badly imbalanced", nd.Name())
		}
	}
}

// The fleet list is the sorted union of every node's list, in the
// single-node response shape.
func TestListAggregates(t *testing.T) {
	_, _, ts := newTestFleet(t, 3, nil)
	want := []string{"a-1", "b-2", "c-3", "d-4", "e-5"}
	for _, id := range want {
		ingest(t, ts.URL, id, 1, 2)
	}
	code, got := getJSON[struct {
		Workloads []string `json:"workloads"`
	}](t, ts.URL+"/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if fmt.Sprint(got.Workloads) != fmt.Sprint(want) {
		t.Fatalf("fleet list = %v, want %v", got.Workloads, want)
	}
}

// Node error semantics must pass through the router unchanged: 404 for
// unknown workloads and routes, 413 for oversized ingest bodies, 415
// for unsupported media types.
func TestErrorPassthrough(t *testing.T) {
	_, _, ts := newTestFleet(t, 2, func(_ int, o *NodeOptions) {
		o.MaxIngestBytes = 128
	})
	// 404: unknown workload on a non-creating route (plain-text body).
	gresp, err := http.Get(ts.URL + "/v1/workloads/ghost/status")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload status: %d, want 404", gresp.StatusCode)
	}
	// 404: unknown sub-route under a real workload.
	ingest(t, ts.URL, "real", 1, 2)
	resp, err := http.Get(ts.URL + "/v1/workloads/real/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sub-route: %d, want 404", resp.StatusCode)
	}
	// 413: body over the node's ingest cap.
	big := "{\"timestamps\": [" + strings.Repeat("1,", 200) + "1]}"
	resp = post(t, ts.URL+"/v1/workloads/real/arrivals", "application/json", big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %d, want 413", resp.StatusCode)
	}
	// 415: unsupported Content-Encoding (the node's negotiation rule:
	// unknown content *types* stay 400-on-bad-JSON, unknown encodings
	// are 415).
	req415, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/workloads/real/arrivals",
		strings.NewReader(`{"timestamps": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	req415.Header.Set("Content-Type", "application/json")
	req415.Header.Set("Content-Encoding", "br")
	resp, err = http.DefaultClient.Do(req415)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("brotli ingest via router: %d, want 415", resp.StatusCode)
	}
	// DELETE forwards too.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workloads/real", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete via router: %d", dresp.StatusCode)
	}
	gresp, err = http.Get(ts.URL + "/v1/workloads/real/status")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted workload still resolves: %d", gresp.StatusCode)
	}
}

// Fleet /healthz: all-ok fleets report ok; a degraded-but-200 node
// (lossy boot) degrades the fleet report at 200; a 503 node makes the
// fleet 503 — the single-node orchestrator contract, lifted over N.
func TestHealthAggregation(t *testing.T) {
	okNode, err := NewNode("ok", NodeOptions{Engine: testEngineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { okNode.Close() })

	rt, err := NewRouter([]*Node{okNode}, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	code, rep := getJSON[map[string]any](t, ts.URL+"/healthz")
	if code != http.StatusOK || rep["status"] != "ok" {
		t.Fatalf("all-ok fleet: %d %v", code, rep)
	}

	// Degraded-at-200 member (what a lossy boot reports).
	degraded := NewRemoteNode("hurt", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status": "degraded", "boot": {"quarantined": [{"id": "w1"}]}}`)
	}))
	rt2, err := NewRouter([]*Node{okNode, degraded}, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(ts2.Close)
	code, rep = getJSON[map[string]any](t, ts2.URL+"/healthz")
	if code != http.StatusOK || rep["status"] != "degraded" {
		t.Fatalf("fleet with degraded-200 member: %d %v, want 200 degraded", code, rep)
	}
	detail := rep["nodes"].(map[string]any)["hurt"].(map[string]any)
	if detail["http_status"] != float64(200) {
		t.Fatalf("per-node detail lost: %v", detail)
	}

	// 503 member (failing snapshots) → fleet 503 with detail.
	down := NewRemoteNode("down", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status": "degraded", "snapshots": {"consecutive_failures": 3}}`)
	}))
	rt3, err := NewRouter([]*Node{okNode, down}, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(rt3.Handler())
	t.Cleanup(ts3.Close)
	code, rep = getJSON[map[string]any](t, ts3.URL+"/healthz")
	if code != http.StatusServiceUnavailable || rep["status"] != "degraded" {
		t.Fatalf("fleet with 503 member: %d %v, want 503 degraded", code, rep)
	}
	if d := rep["nodes"].(map[string]any)["down"].(map[string]any); d["http_status"] != float64(503) {
		t.Fatalf("503 detail lost: %v", d)
	}
}

// Bulk config through the router: each node applies what it hosts;
// the merged scoreboard covers the whole fleet, and a workload is 404
// only when no node has it.
func TestBulkConfigAcrossNodes(t *testing.T) {
	rt, nodes, ts := newTestFleet(t, 3, nil)
	ids := []string{"api-a", "api-b", "api-c", "api-d", "batch-x"}
	for _, id := range ids {
		ingest(t, ts.URL, id, 1, 2)
	}
	// Sanity: the api-* set spans more than one node.
	ownersSeen := map[string]bool{}
	for _, id := range ids[:4] {
		ownersSeen[rt.Owner(id)] = true
	}
	if len(ownersSeen) < 2 {
		t.Fatalf("test workloads all landed on one node; pick different names")
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/admin/config",
		strings.NewReader(`{"glob": "api-*", "workloads": ["ghost"], "config": {"pending": 21}}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk config: %d", resp.StatusCode)
	}
	var out server.BulkConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Matched != 4 || out.Updated != 4 {
		t.Fatalf("fleet bulk scoreboard: %+v", out)
	}
	for _, id := range ids[:4] {
		if r := out.Results[id]; !r.OK || r.Version != 2 {
			t.Fatalf("result[%s] = %+v", id, r)
		}
	}
	if r := out.Results["ghost"]; r.OK || r.Code != http.StatusNotFound {
		t.Fatalf("result[ghost] = %+v, want 404", r)
	}
	if _, ok := out.Results["batch-x"]; ok {
		t.Fatal("glob matched batch-x")
	}
	// The config really changed on the owning nodes.
	for _, id := range ids[:4] {
		e, ok := nodes[ownerIndex(t, rt, id)].Registry().Get(id)
		if !ok {
			t.Fatalf("workload %s not on its owner", id)
		}
		if ec := e.EngineConfig(); ec.Pending != 21 || ec.Version != 2 {
			t.Fatalf("config of %s on owner: %+v", id, ec)
		}
	}
	// Request-level rejects relay the node's 400.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/admin/config",
		strings.NewReader(`{"config": {"pending": 21}}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("targetless bulk via router: %d, want 400", resp.StatusCode)
	}
}

func ownerIndex(t *testing.T, rt *Router, id string) int {
	t.Helper()
	owner := rt.Owner(id)
	for i, name := range rt.Nodes() {
		if name == owner {
			return i
		}
	}
	t.Fatalf("owner %s of %s not in fleet", owner, id)
	return -1
}

// The per-node passthrough exposes each member's full surface under
// /v1/nodes/{node}/.
func TestNodePassthrough(t *testing.T) {
	rt, _, ts := newTestFleet(t, 2, nil)
	ingest(t, ts.URL, "svc", 1, 2, 3)
	owner := rt.Owner("svc")
	code, got := getJSON[struct {
		Workloads []string `json:"workloads"`
	}](t, ts.URL+"/v1/nodes/"+owner+"/v1/workloads")
	if code != http.StatusOK || len(got.Workloads) != 1 || got.Workloads[0] != "svc" {
		t.Fatalf("passthrough list on %s: %d %v", owner, code, got)
	}
	resp, err := http.Get(ts.URL + "/v1/nodes/nope/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node passthrough: %d, want 404", resp.StatusCode)
	}
}

// GET /v1/admin/fleet maps the topology: members, shares, placement.
func TestFleetTopology(t *testing.T) {
	_, _, ts := newTestFleet(t, 3, nil)
	ingest(t, ts.URL, "svc-map", 1, 2)
	code, top := getJSON[struct {
		Nodes []map[string]any  `json:"nodes"`
		Ring  map[string]any    `json:"ring"`
		Pins  map[string]string `json:"pins"`
		Work  map[string]string `json:"workloads"`
	}](t, ts.URL+"/v1/admin/fleet")
	if code != http.StatusOK || len(top.Nodes) != 3 {
		t.Fatalf("fleet topology: %d %+v", code, top)
	}
	if len(top.Pins) != 0 {
		t.Fatalf("fresh fleet has pins: %v", top.Pins)
	}
	if top.Work["svc-map"] == "" {
		t.Fatalf("placement missing svc-map: %v", top.Work)
	}
	share := 0.0
	for _, n := range top.Nodes {
		share += n["ring_share"].(float64)
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("ring shares sum to %g", share)
	}
}

// The merged /metrics exposition: node series labeled, fleet series
// present, headers unique, families contiguous — and route labels stay
// pattern-keyed (no workload IDs).
func TestMetricsAggregation(t *testing.T) {
	_, _, ts := newTestFleet(t, 2, nil)
	for i := 0; i < 8; i++ {
		ingest(t, ts.URL, fmt.Sprintf("meter-%d", i), 1, 2, 3)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet metrics: %d", resp.StatusCode)
	}
	text := string(body)

	for _, want := range []string{
		`robustscaler_fleet_nodes{node="router"} 2`,
		`robustscaler_fleet_node_workloads{node="n0"}`,
		`robustscaler_fleet_node_workloads{node="n1"}`,
		`robustscaler_fleet_ring_share{node="n0"}`,
		`robustscaler_fleet_forwards_total{node=`,
		`robustscaler_fleet_scatter_seconds_bucket`,
		`robustscaler_ingest_events_total{node="n0",format="binary"}`,
		`robustscaler_http_requests_total{node="router",route="/v1/workloads/{id}/{rest...}",code="2xx"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged exposition missing %q\n%s", want, text)
		}
	}
	if strings.Contains(text, "meter-0") {
		t.Fatal("a workload ID leaked into the metric space")
	}
	// Exposition validity: every family header appears exactly once
	// and all of a family's samples sit in one contiguous block.
	assertValidExposition(t, text)
	// The node label injection must never produce a double node label.
	if strings.Contains(text, `node="router",node=`) || strings.Contains(text, `,node="n0",node=`) {
		t.Fatal("double node label in merged exposition")
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// assertValidExposition checks text-format structural rules the
// Prometheus scraper enforces.
func assertValidExposition(t *testing.T, text string) {
	t.Helper()
	seenHeader := map[string]bool{}
	sampleBlocks := map[string]int{}
	cur := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seenHeader[name] {
				t.Fatalf("duplicate TYPE header for %s", name)
			}
			seenHeader[name] = true
			cur = name
			sampleBlocks[name]++
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != cur && name != cur {
			t.Fatalf("sample %q outside its family block (current family %q)", line, cur)
		}
	}
}

// The node passthrough addresses a member directly, bypassing the
// route table and the migration gates — safe for reads and per-node
// admin, unsafe for workload writes, which could recreate a divergent
// copy on a former owner. Writes under /v1/workloads must be refused.
func TestPassthroughBlocksWorkloadWrites(t *testing.T) {
	rt, _, ts := newTestFleet(t, 2, nil)
	ingest(t, ts.URL, "pw", 1, 2)
	owner := rt.Owner("pw")
	base := ts.URL + "/v1/nodes/" + owner

	// Reads pass through: the operator's view of one member.
	code, status := getJSON[map[string]any](t, base+"/v1/workloads/pw/status")
	if code != http.StatusOK || status["arrivals_recorded"] != float64(2) {
		t.Fatalf("passthrough read: %d %v", code, status)
	}

	// Workload writes are refused.
	for _, tc := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/workloads/pw/arrivals", `{"timestamps": [3]}`},
		{http.MethodPost, "/v1/workloads/pw/train", ""},
		{http.MethodPut, "/v1/workloads/pw/config", `{}`},
		{http.MethodDelete, "/v1/workloads/pw", ""},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("passthrough %s %s: %d, want 403", tc.method, tc.path, resp.StatusCode)
		}
	}
	// Nothing leaked through.
	code, status = getJSON[map[string]any](t, ts.URL+"/v1/workloads/pw/status")
	if code != http.StatusOK || status["arrivals_recorded"] != float64(2) {
		t.Fatalf("workload mutated through passthrough: %d %v", code, status)
	}

	// Per-node admin and metrics stay reachable (snapshot answers 409
	// on these storeless nodes — the point is it is not 403).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("passthrough metrics: %d", resp.StatusCode)
	}
	resp = post(t, base+"/v1/admin/snapshot", "application/json", "")
	resp.Body.Close()
	if resp.StatusCode == http.StatusForbidden {
		t.Fatalf("passthrough admin blocked: %d", resp.StatusCode)
	}
}

// Gates exist to serialize forwards against migration cutovers, and
// migrations only involve workloads that exist — the router must not
// allocate a permanent per-id mutex for every garbage id a client
// probes, or unauthenticated 404 traffic grows its memory without
// bound.
func TestForwardGatesOnlyRealWorkloads(t *testing.T) {
	rt, _, ts := newTestFleet(t, 2, nil)
	gateCount := func() int {
		n := 0
		rt.gates.Range(func(_, _ any) bool { n++; return true })
		return n
	}

	for i := 0; i < 16; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/workloads/ghost-%d/status", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("ghost status: %d", resp.StatusCode)
		}
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/workloads/ghost-cfg/config", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost config put: %d", resp.StatusCode)
	}
	if n := gateCount(); n != 0 {
		t.Fatalf("garbage ids allocated %d gates", n)
	}

	// A creating request allocates the gate (it can race a cutover) and
	// later reads of the real workload reuse it.
	ingest(t, ts.URL, "realio", 1, 2, 3)
	if _, ok := rt.gates.Load("realio"); !ok {
		t.Fatal("creating ingest did not allocate a gate")
	}
	if n := gateCount(); n != 1 {
		t.Fatalf("gates after one real workload: %d", n)
	}
}
