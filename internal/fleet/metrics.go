package fleet

// Fleet observability. The router keeps its own registry — fleet
// gauges (membership, per-node workload counts, ring shares, pins),
// forward counters, scatter latency histograms, migration counters —
// and GET /metrics merges it with every node's exposition into one
// fleet-wide Prometheus document. Node series gain a node="<name>"
// label during the merge; router series get node="router" unless they
// already carry a node label (the per-node fleet gauges do). Per-route
// HTTP series stay keyed by mux pattern on both layers, so cardinality
// is O(routes × nodes), never O(workloads).

import (
	"net/http"
	"strings"

	"robustscaler/internal/metrics"
)

// scatterRoutes are the fleet-wide paths whose fan-out latency is
// histogrammed (the keys of Router.scatterSeconds).
var scatterRoutes = []string{
	"/healthz",
	"/metrics",
	"/v1/workloads",
	"/v1/admin/config",
	"/v1/admin/snapshot",
	"/v1/admin/generations",
}

func (rt *Router) initMetrics() {
	m := rt.reg
	m.GaugeFunc("robustscaler_fleet_nodes", "Fleet member count.",
		func() float64 { return float64(len(rt.nodes)) })
	m.GaugeFunc("robustscaler_fleet_pins", "Workloads routed off their ring owner (migration pins + boot reconciliation).",
		func() float64 { return float64(len(rt.table.Load().pins)) })

	rt.forwards = make(map[string]*metrics.Counter, len(rt.order))
	for _, name := range rt.order {
		name := name
		label := metrics.Label{Name: "node", Value: name}
		rt.forwards[name] = m.Counter("robustscaler_fleet_forwards_total",
			"Per-workload requests forwarded, by owning node.", label)
		m.GaugeFunc("robustscaler_fleet_node_workloads",
			"Workloads currently hosted, by node (in-process nodes only).",
			func() float64 {
				reg := rt.nodes[name].Registry()
				if reg == nil {
					return 0
				}
				return float64(reg.Len())
			}, label)
		m.GaugeFunc("robustscaler_fleet_ring_share",
			"Analytic fraction of the hash keyspace owned, by node.",
			func() float64 { return rt.table.Load().ring.Shares()[name] }, label)
		m.GaugeFunc("robustscaler_fleet_pinned_workloads",
			"Workloads pinned to this node against ring opinion.",
			func() float64 {
				n := 0
				for _, owner := range rt.table.Load().pins {
					if owner == name {
						n++
					}
				}
				return float64(n)
			}, label)
	}

	rt.scatterSeconds = make(map[string]*metrics.Histogram, len(scatterRoutes))
	for _, route := range scatterRoutes {
		rt.scatterSeconds[route] = m.Histogram("robustscaler_fleet_scatter_seconds",
			"Scatter-gather fan-out latency, by fleet route.", metrics.DefBuckets,
			metrics.Label{Name: "route", Value: route})
	}

	rt.migrations = map[string]*metrics.Counter{}
	// "ok_source_snapshot_failed": the migration completed (table
	// flipped, destination durable) but the source's post-cutover
	// forget-snapshot failed — success with a warning, not an error.
	for _, result := range []string{"ok", "error", "noop", "ok_source_snapshot_failed"} {
		rt.migrations[result] = m.Counter("robustscaler_fleet_migrations_total",
			"Workload migrations, by result.", metrics.Label{Name: "result", Value: result})
	}
	rt.migrationTime = m.Histogram("robustscaler_fleet_migration_seconds",
		"End-to-end workload migration duration.", metrics.DefBuckets)
	rt.migrationPause = m.Histogram("robustscaler_fleet_migration_pause_seconds",
		"Ingest-paused window during migration cutover (the WAL-tail phase).", metrics.DefBuckets)
}

// handleMetrics merges the router's exposition with every node's into
// one document (package comment). Families keep one HELP/TYPE header
// and their series stay contiguous, as the text format requires.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	_ = rt.reg.WritePrometheus(&sb)
	sources := []labeledExposition{{node: "router", text: sb.String()}}
	for _, nr := range rt.scatter(r.Context(), http.MethodGet, "/metrics", nil, "") {
		if nr.status != http.StatusOK {
			continue // a node without /metrics has nothing to merge
		}
		sources = append(sources, labeledExposition{node: nr.node, text: string(nr.body)})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMerged(w, sources)
}

type labeledExposition struct {
	node string
	text string
}

// family is one metric family's slice of an exposition: its HELP/TYPE
// header and sample lines.
type family struct {
	name    string
	header  []string
	samples []string
}

// parseExposition splits a Prometheus text exposition into families.
// Sample lines belong to the family whose header precedes them —
// which also files histogram _bucket/_sum/_count series under their
// family without suffix games.
func parseExposition(text string) []*family {
	var fams []*family
	var cur *family
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# HELP "):]
			name := rest
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				name = rest[:i]
			}
			if cur == nil || cur.name != name {
				cur = &family{name: name}
				fams = append(fams, cur)
			}
			cur.header = append(cur.header, line)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // stray comment
		}
		if cur == nil {
			cur = &family{}
			fams = append(fams, cur)
		}
		cur.samples = append(cur.samples, line)
	}
	return fams
}

// writeMerged interleaves the sources family by family: header from
// the first source that has one, then every source's samples with the
// node label injected. Family order is first-seen order across
// sources, so the router's fleet series lead and node series group
// behind their shared headers.
func writeMerged(w http.ResponseWriter, sources []labeledExposition) {
	type merged struct {
		header  []string
		samples []string
	}
	var order []string
	byName := map[string]*merged{}
	for _, src := range sources {
		for _, f := range parseExposition(src.text) {
			m, ok := byName[f.name]
			if !ok {
				m = &merged{header: f.header}
				byName[f.name] = m
				order = append(order, f.name)
			}
			for _, s := range f.samples {
				m.samples = append(m.samples, injectNodeLabel(s, src.node))
			}
		}
	}
	for _, name := range order {
		m := byName[name]
		for _, h := range m.header {
			w.Write([]byte(h))
			w.Write([]byte{'\n'})
		}
		for _, s := range m.samples {
			w.Write([]byte(s))
			w.Write([]byte{'\n'})
		}
	}
}

// injectNodeLabel rewrites one sample line to carry node="<node>",
// leaving lines that already have a node label untouched (the
// router's own per-node fleet gauges name their member explicitly).
func injectNodeLabel(line, node string) string {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		if hasNodeLabel(line[brace+1:]) {
			return line
		}
		sep := ","
		if strings.HasPrefix(line[brace+1:], "}") {
			sep = ""
		}
		return line[:brace+1] + `node="` + node + `"` + sep + line[brace+1:]
	}
	if space < 0 {
		return line // not a sample line we understand; pass through
	}
	return line[:space] + `{node="` + node + `"}` + line[space:]
}

// hasNodeLabel reports whether the label block starting right after
// '{' contains a label literally named "node". Values are skipped as
// quoted strings (honoring backslash escapes), so a value containing
// the bytes `node="` cannot false-positive.
func hasNodeLabel(s string) bool {
	i := 0
	for i < len(s) && s[i] != '}' {
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return false
		}
		if s[start:i] == "node" {
			return true
		}
		i++ // '='
		if i < len(s) && s[i] == '"' {
			i++
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i++
				}
				i++
			}
			i++ // closing quote
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return false
}
