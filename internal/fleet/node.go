// Package fleet is the horizontal distribution layer: N shared-nothing
// scalerd nodes — each a full Registry+Store+WAL stack over its own
// data directory — behind a Router that owns a consistent-hash ring
// (internal/ring), forwards per-workload routes to the owning node,
// scatter-gathers the fleet-wide endpoints, and migrates live
// workloads between nodes with a snapshot handoff plus WAL-tail
// catch-up.
//
// The layer is in-process-first: nodes are values in this process and
// dispatch is a direct http.Handler call, so the whole fleet is plain
// `go test`-able and `scalerd -fleet-nodes N` is one binary. The same
// Router works over out-of-process nodes through NewRemoteNode (an
// http.Handler seam — typically httputil.ReverseProxy over a custom
// http.RoundTripper); real multi-process is then deployment
// configuration, not new code.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httputil"
	"net/url"
	"path/filepath"
	"time"

	"robustscaler/internal/engine"
	"robustscaler/internal/pipeline"
	"robustscaler/internal/server"
	"robustscaler/internal/store"
	"robustscaler/internal/wal"
)

// NodeOptions configures one fleet node. The zero value is a valid
// in-memory node: no persistence, no WAL, no background loops.
type NodeOptions struct {
	// Engine is the fleet-default engine configuration new workloads
	// start from (identical to scalerd's engine flags). The zero value
	// means server.DefaultConfig(). Every node of a fleet must share
	// one template — per-workload config travels with migrations, but
	// defaults for *new* workloads come from the owning node.
	Engine *server.Config

	// MaxIngestBytes caps one arrivals body. 0 keeps the server
	// default (server.DefaultMaxIngestBytes); negative disables the
	// cap.
	MaxIngestBytes int64

	// DataDir enables persistence: snapshots under DataDir, the
	// write-ahead log under DataDir/wal. Empty disables both.
	DataDir string
	// SnapshotEvery starts a background snapshotter on that cadence;
	// 0 disables (snapshots then happen only via the admin endpoint,
	// migration handoffs, and the final one at Close).
	SnapshotEvery time.Duration
	// SnapshotRetain is how many committed snapshot generations stay
	// on disk for point-in-time restore; 0 means 1 (the current one).
	SnapshotRetain int
	// RestoreGeneration boots from this retained generation instead of
	// the current one (0 = current) and resets the WAL, which belongs
	// to the abandoned timeline.
	RestoreGeneration uint64

	// WALFsync is the log durability policy. Defaults to SyncAlways
	// (wal.Options' default); scalerd's flag default is "interval".
	WALFsync wal.SyncPolicy
	// WALFsyncInterval is the SyncInterval flush cadence; 0 means the
	// WAL default.
	WALFsyncInterval time.Duration
	// WALSegmentBytes is the segment rotation size; 0 means the WAL
	// default.
	WALSegmentBytes int64

	// StalenessThreshold feeds the stale-workload alert gauge
	// (seconds; 0 disables).
	StalenessThreshold float64
	// RetrainEvery starts a background retrain sweep on that cadence
	// (0 disables) with RetrainWorkers workers (0 means 1).
	RetrainEvery   time.Duration
	RetrainWorkers int

	// AutoscaleEvery starts the background actuation loop on that
	// cadence (0 disables; recommendations then come only from the
	// endpoint). Per-workload gating still applies: only workloads
	// whose autoscale config is enabled are stepped, each at its own
	// interval_seconds.
	AutoscaleEvery time.Duration
	// Actuator selects the actuation backend: "" or "dryrun" records
	// decisions without acting; "sim" drives the in-process simulated
	// cluster.
	Actuator string
}

// BootReport is what restoring a node's state found and gave up on,
// for the caller to log.
type BootReport struct {
	Restored    int
	Quarantined []store.Quarantined
	WALReplay   engine.WALReplayReport
}

// Node is one member of the fleet: a full scalerd stack (registry,
// store, WAL, background loops) behind a name. Remote nodes (see
// NewRemoteNode) carry only the name and an http.Handler.
type Node struct {
	name    string
	handler http.Handler

	// Everything below is nil for a remote node.
	srv         *server.Server
	st          *store.Store
	walMgr      *wal.Manager
	snapshotter *engine.Snapshotter
	retrainer   *engine.Retrainer
	autoscaler  *pipeline.Loop
	boot        BootReport
	dataDir     string
}

// NewNode boots a fleet node: open the store, restore tolerant of
// per-workload corruption, open and replay the WAL, then start the
// background loops — the same sequence, in the same order, scalerd
// has always used for its single stack, because it is one (scalerd is
// now a 1-node fleet).
func NewNode(name string, opts NodeOptions) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("fleet: empty node name")
	}
	cfg := server.DefaultConfig()
	if opts.Engine != nil {
		cfg = *opts.Engine
	}
	s, err := server.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet node %s: %w", name, err)
	}
	if opts.MaxIngestBytes != 0 {
		n := opts.MaxIngestBytes
		if n < 0 {
			n = 0 // the server treats ≤0 as "no cap"
		}
		s.SetMaxIngestBytes(n)
	}

	n := &Node{name: name, srv: s, dataDir: opts.DataDir}
	if opts.DataDir != "" {
		if err := n.bootPersistence(opts); err != nil {
			return nil, fmt.Errorf("fleet node %s: %w", name, err)
		}
	} else if opts.RestoreGeneration != 0 {
		return nil, fmt.Errorf("fleet node %s: RestoreGeneration needs DataDir", name)
	}

	if t := opts.StalenessThreshold; math.IsNaN(t) || t < 0 {
		return nil, fmt.Errorf("fleet node %s: staleness threshold %g invalid", name, t)
	}
	s.Registry().SetStalenessThreshold(opts.StalenessThreshold)
	if opts.RetrainEvery > 0 {
		workers := opts.RetrainWorkers
		if workers <= 0 {
			workers = 1
		}
		n.retrainer = s.Registry().StartRetrainer(opts.RetrainEvery, workers)
	}
	if err := s.SetActuator(opts.Actuator); err != nil {
		n.Close()
		return nil, fmt.Errorf("fleet node %s: %w", name, err)
	}
	if opts.AutoscaleEvery > 0 {
		n.autoscaler = s.Pipelines().StartLoop(opts.AutoscaleEvery)
	}
	n.handler = s.Handler()
	return n, nil
}

// bootPersistence is the store+WAL half of the boot order. Restore
// must finish before the node serves so requests never race a
// half-restored registry; the WAL opens after the snapshot restore and
// before serving, so every batch acknowledged from here on is durable.
func (n *Node) bootPersistence(opts NodeOptions) error {
	st, err := store.Open(opts.DataDir)
	if err != nil {
		return fmt.Errorf("opening data dir %s: %w (move its contents aside to boot cold)", opts.DataDir, err)
	}
	retain := opts.SnapshotRetain
	if retain < 1 {
		retain = 1
	}
	st.SetRetain(retain)
	if opts.RestoreGeneration != 0 {
		// Point-in-time restore: repoint the manifest before anything
		// reads it. The restore commits a new generation, so the
		// pre-restore state stays retained (and recoverable) too.
		if err := st.RestoreGeneration(opts.RestoreGeneration); err != nil {
			return fmt.Errorf("restore generation %d: %w", opts.RestoreGeneration, err)
		}
	}
	restored, quarantined, err := n.srv.Registry().RestoreFromTolerant(st)
	if err != nil {
		return fmt.Errorf("restoring snapshot from %s: %w (move its contents aside to boot cold)", opts.DataDir, err)
	}

	walMgr, err := wal.Open(wal.Options{
		Dir:          filepath.Join(opts.DataDir, "wal"),
		Policy:       opts.WALFsync,
		Interval:     opts.WALFsyncInterval,
		SegmentBytes: opts.WALSegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("opening write-ahead log under %s: %w", opts.DataDir, err)
	}
	if opts.RestoreGeneration != 0 {
		// The logs describe the timeline the rollback just abandoned;
		// replaying them over the older snapshot would interleave two
		// histories.
		if err := walMgr.ResetAll(); err != nil {
			walMgr.Close()
			return fmt.Errorf("resetting write-ahead logs after rollback: %w", err)
		}
	}
	if err := n.srv.Registry().AttachWAL(walMgr, opts.DataDir); err != nil {
		walMgr.Close()
		return fmt.Errorf("attaching write-ahead log: %w", err)
	}
	rep, err := n.srv.Registry().ReplayWAL()
	if err != nil {
		walMgr.Close()
		return fmt.Errorf("replaying write-ahead log: %w", err)
	}
	walMgr.Instrument(n.srv.Metrics())
	n.srv.SetBootDegraded(quarantined, rep.Reset)
	n.srv.SetStore(st)
	n.st, n.walMgr = st, walMgr
	n.boot = BootReport{Restored: restored, Quarantined: quarantined, WALReplay: rep}

	if opts.SnapshotEvery > 0 {
		n.snapshotter = n.srv.Registry().StartSnapshotter(st, opts.SnapshotEvery)
	}
	return nil
}

// NewRemoteNode wraps an out-of-process node the router can forward
// and scatter to but not migrate from/to: handler is the remote's HTTP
// surface, typically httputil.ReverseProxy over whatever transport
// reaches it. See ProxyHandler.
func NewRemoteNode(name string, handler http.Handler) *Node {
	return &Node{name: name, handler: handler}
}

// ProxyHandler is the multi-process seam: an http.Handler that relays
// to base over rt (nil rt = http.DefaultTransport), suitable for
// NewRemoteNode. Kept minimal deliberately — retries, hedging and
// authentication belong to the transport, which is exactly why the
// seam is an http.RoundTripper.
func ProxyHandler(base *url.URL, rt http.RoundTripper) http.Handler {
	p := httputil.NewSingleHostReverseProxy(base)
	p.Transport = rt
	return p
}

// Name returns the node's fleet-unique name.
func (n *Node) Name() string { return n.name }

// Handler returns the node's HTTP surface.
func (n *Node) Handler() http.Handler { return n.handler }

// Server returns the in-process server, or nil for a remote node.
func (n *Node) Server() *server.Server { return n.srv }

// Registry returns the node's workload registry, or nil for a remote
// node.
func (n *Node) Registry() *engine.Registry {
	if n.srv == nil {
		return nil
	}
	return n.srv.Registry()
}

// Boot returns what restoring this node found.
func (n *Node) Boot() BootReport { return n.boot }

// DataDir returns the node's data directory ("" without persistence).
func (n *Node) DataDir() string { return n.dataDir }

// WALLog returns the workload's write-ahead log, or nil when the node
// runs without one. The log is the same instance the engine appends
// to — reading it during a migration gate sees every acknowledged
// batch.
func (n *Node) WALLog(id string) *wal.Log {
	if n.walMgr == nil {
		return nil
	}
	l, err := n.walMgr.Log(id)
	if err != nil {
		return nil
	}
	return l
}

// SnapshotNow commits a snapshot of the node's current state, or is a
// no-op without persistence. Migration calls it on the source after
// cutover — the registry drop it must make durable is exactly the kind
// of change only a full snapshot can express.
func (n *Node) SnapshotNow() error {
	if n.st == nil || n.srv == nil {
		return nil
	}
	_, err := n.srv.Registry().SnapshotTo(n.st)
	return err
}

// SnapshotWorkload makes just the named workload durable, leaving the
// rest of the node's snapshot untouched; a no-op without persistence.
// Migration calls it on the destination inside the cutover gate — a
// crash right after the source forgets the workload cannot lose it,
// and the ingest pause stays O(workload) no matter how much else the
// node hosts.
func (n *Node) SnapshotWorkload(id string) error {
	if n.st == nil || n.srv == nil {
		return nil
	}
	return n.srv.Registry().SnapshotWorkloadTo(n.st, id)
}

// Close shuts the node down gracefully: stop the background loops,
// write a final snapshot (persistence on), then close the WAL — the
// snapshot truncates the logs it made redundant, and closing flushes
// whatever the interval fsync policy still holds dirty. The caller
// drains HTTP first so the final snapshot sees in-flight effects.
func (n *Node) Close() error {
	if n.srv == nil {
		return nil
	}
	var errs []error
	if n.autoscaler != nil {
		n.autoscaler.Stop()
	}
	if n.retrainer != nil {
		n.retrainer.Stop()
	}
	switch {
	case n.snapshotter != nil:
		if err := n.snapshotter.Stop(); err != nil {
			errs = append(errs, fmt.Errorf("final snapshot: %w", err))
		}
	case n.st != nil:
		if _, err := n.srv.Registry().SnapshotTo(n.st); err != nil {
			errs = append(errs, fmt.Errorf("final snapshot: %w", err))
		}
	}
	if n.walMgr != nil {
		if err := n.walMgr.Close(); err != nil {
			errs = append(errs, fmt.Errorf("closing write-ahead log: %w", err))
		}
	}
	return errors.Join(errs...)
}
