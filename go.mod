module robustscaler

go 1.24
