package robustscaler

import (
	"math"
	"math/rand"
	"testing"

	"robustscaler/internal/nhpp"
)

// periodicArrivals draws an NHPP with a known daily-like cycle.
func periodicArrivals(seed int64, period, horizon float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := nhpp.Func{F: func(t float64) float64 {
		return 0.3 + 0.25*math.Sin(2*math.Pi*t/period)
	}, Step: 10, MaxHorizon: horizon * 2}
	return nhpp.Simulate(rng, in, 0, horizon)
}

func TestTrainDetectsPeriodAndFits(t *testing.T) {
	const (
		period  = 7200.0
		horizon = 8 * period
	)
	arr := periodicArrivals(1, period, horizon)
	series := CountsFromArrivals(arr, 0, horizon, 60)
	model, err := Train(series, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model.PeriodSeconds == 0 {
		t.Fatal("no period detected")
	}
	if math.Abs(model.PeriodSeconds-period) > period/8 {
		t.Fatalf("detected period %g s, want ≈%g", model.PeriodSeconds, period)
	}
	// The fitted intensity should track the truth within Poisson noise.
	var mse float64
	n := 0
	for bin := 10; bin < series.Len()-10; bin++ {
		tt := float64(bin)*60 + 30
		truth := 0.3 + 0.25*math.Sin(2*math.Pi*tt/period)
		d := model.Rate(tt) - truth
		mse += d * d
		n++
	}
	mse /= float64(n)
	if mse > 0.01 {
		t.Fatalf("intensity MSE %g too high", mse)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, DefaultTrainConfig()); err == nil {
		t.Fatal("nil series accepted")
	}
}

func TestEndToEndHPPipeline(t *testing.T) {
	const (
		period   = 7200.0
		trainEnd = 8 * period
		testEnd  = 10 * period
	)
	arr := periodicArrivals(2, period, testEnd)
	var trainArr []float64
	var queries []Query
	rng := rand.New(rand.NewSource(3))
	for _, a := range arr {
		if a < trainEnd {
			trainArr = append(trainArr, a)
		} else {
			queries = append(queries, Query{Arrival: a, Service: 10 + 10*rng.Float64()})
		}
	}
	series := CountsFromArrivals(trainArr, 0, trainEnd, 60)
	model, err := Train(series, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.9
	policy, err := NewHPPolicy(model, target, FixedPending(13), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(queries, policy, ReplayConfig{
		Start: trainEnd, End: testEnd, Pending: FixedPending(13), Tick: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.HitRate()-target) > 0.06 {
		t.Fatalf("end-to-end hit rate %g, want ≈%g", res.HitRate(), target)
	}
	// Proactive scaling must beat reactive on RT.
	reactive, err := Replay(queries, NewBackupPool(0), ReplayConfig{
		Start: trainEnd, End: testEnd, Pending: FixedPending(13), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTAvg() >= reactive.RTAvg() {
		t.Fatalf("proactive RT %g not better than reactive %g", res.RTAvg(), reactive.RTAvg())
	}
}

func TestPolicyConstructorsValidate(t *testing.T) {
	if _, err := NewHPPolicy(nil, 0.9, FixedPending(13), 1, 0); err == nil {
		t.Fatal("nil model accepted")
	}
	arr := periodicArrivals(6, 3600, 7200)
	series := CountsFromArrivals(arr, 0, 7200, 60)
	model, err := Train(series, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHPPolicy(model, 1.5, FixedPending(13), 1, 0); err == nil {
		t.Fatal("target > 1 accepted")
	}
	if _, err := NewRTPolicy(model, -2, FixedPending(13), 1, 0); err == nil {
		t.Fatal("negative wait budget accepted")
	}
	if _, err := NewCostPolicy(model, -2, FixedPending(13), 1, 0); err == nil {
		t.Fatal("negative idle budget accepted")
	}
	if _, err := NewRTPolicy(nil, 1, FixedPending(13), 1, 0); err == nil {
		t.Fatal("nil model accepted by RT")
	}
	if _, err := NewCostPolicy(nil, 1, FixedPending(13), 1, 0); err == nil {
		t.Fatal("nil model accepted by Cost")
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(nil, NewBackupPool(0), ReplayConfig{Start: 0, End: 10}); err == nil {
		t.Fatal("missing Pending accepted")
	}
}

func TestPendingDistHelpers(t *testing.T) {
	f := FixedPending(13)
	if f.Quantile(0.99) != 13 {
		t.Fatal("FixedPending wrong")
	}
	e := ExpPending(20)
	if math.Abs(e.Quantile(1-1/math.E)-20) > 1e-9 {
		t.Fatal("ExpPending wrong")
	}
}

// The retraining wrapper must keep the HP target as the workload drifts:
// the initial model sees a low rate, then traffic doubles; refits adapt.
func TestRetrainingPolicyAdaptsToDrift(t *testing.T) {
	const (
		pending  = 13.0
		seedEnd  = 4000.0
		driftAt  = 4000.0
		totalEnd = 16000.0
	)
	rng := rand.New(rand.NewSource(51))
	rate := func(tt float64) float64 {
		if tt < driftAt {
			return 0.2
		}
		return 0.6 // traffic triples after the seed window
	}
	in := nhpp.Func{F: rate, Step: 10, MaxHorizon: 2 * totalEnd}
	arr := nhpp.Simulate(rng, in, 0, totalEnd)
	var seedArr []float64
	var queries []Query
	for _, a := range arr {
		if a < seedEnd {
			seedArr = append(seedArr, a)
		} else {
			queries = append(queries, Query{Arrival: a, Service: 15})
		}
	}
	series := CountsFromArrivals(seedArr, 0, seedEnd, 60)
	tcfg := DefaultTrainConfig()
	tcfg.DetectPeriodicity = false
	policy, err := NewRetrainingPolicy(series, RetrainConfig{
		Every: 600, Window: 3600, Train: tcfg,
	}, func(m *Model) (Policy, error) {
		return NewHPPolicy(m, 0.9, FixedPending(pending), 1, 52)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(queries, policy, ReplayConfig{
		Start: seedEnd, End: totalEnd, Pending: FixedPending(pending), Tick: 1, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without retraining, the stale 0.2-qps model under-provisions for the
	// 0.6-qps regime and misses badly; with retraining the target holds
	// once the trailing window has flushed the pre-drift data. Judge the
	// steady state: queries in the last two thirds of the replay.
	var hits, total int
	for i, q := range queries {
		if q.Arrival < seedEnd+(totalEnd-seedEnd)/3 || i >= len(res.Hits) {
			continue
		}
		total++
		if res.Hits[i] {
			hits++
		}
	}
	steady := float64(hits) / float64(total)
	if math.Abs(steady-0.9) > 0.07 {
		t.Fatalf("retrained steady-state hit rate %g, want ≈0.9", steady)
	}
	static, err := Train(series, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	staticPolicy, err := NewHPPolicy(static, 0.9, FixedPending(pending), 1, 52)
	if err != nil {
		t.Fatal(err)
	}
	staticRes, err := Replay(queries, staticPolicy, ReplayConfig{
		Start: seedEnd, End: totalEnd, Pending: FixedPending(pending), Tick: 1, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	if staticRes.HitRate() >= res.HitRate() {
		t.Fatalf("retraining gave no benefit: static %g vs retrained %g",
			staticRes.HitRate(), res.HitRate())
	}
}

func TestRetrainingPolicyValidation(t *testing.T) {
	tcfg := DefaultTrainConfig()
	builder := func(m *Model) (Policy, error) {
		return NewHPPolicy(m, 0.9, FixedPending(13), 1, 0)
	}
	if _, err := NewRetrainingPolicy(nil, RetrainConfig{Every: 60, Train: tcfg}, builder); err == nil {
		t.Fatal("nil seed accepted")
	}
	series := CountsFromArrivals([]float64{10, 20}, 0, 60, 60)
	if _, err := NewRetrainingPolicy(series, RetrainConfig{Every: 0, Train: tcfg}, builder); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewRetrainingPolicy(series, RetrainConfig{Every: 60, Train: tcfg}, nil); err == nil {
		t.Fatal("nil builder accepted")
	}
}
