package robustscaler

import (
	"fmt"
	"math"

	"robustscaler/internal/nhpp"
	"robustscaler/internal/sim"
	"robustscaler/internal/timeseries"
)

// RetrainConfig controls online model refreshing. The paper notes the
// NHPP only needs retraining at a low frequency (e.g. every half hour);
// this wrapper automates that: observed arrivals are appended to the
// count series and the model is refitted on a trailing window, after
// which the inner policy is rebuilt around the fresh forecast.
type RetrainConfig struct {
	// Every is the retraining period in seconds (e.g. 1800).
	Every float64
	// Window bounds the training history in seconds; 0 keeps everything.
	Window float64
	// Train configures each refit.
	Train TrainConfig
}

// PolicyBuilder constructs the inner autoscaling policy from a model —
// typically a closure over NewHPPolicy / NewRTPolicy / NewCostPolicy.
type PolicyBuilder func(m *Model) (Policy, error)

// retrainingPolicy wraps an inner RobustScaler policy and refits its
// model periodically from the arrivals observed during the replay.
type retrainingPolicy struct {
	cfg    RetrainConfig
	build  PolicyBuilder
	series *timeseries.Series

	inner     Policy
	lastTrain float64
	// trainErrs counts refits that failed (the previous model is kept).
	trainErrs int
}

// NewRetrainingPolicy wraps build's policy with periodic retraining. seed
// is the count series the first model is trained on; it is extended in
// place as queries arrive.
func NewRetrainingPolicy(seed *timeseries.Series, cfg RetrainConfig, build PolicyBuilder) (Policy, error) {
	if seed == nil || seed.Len() == 0 {
		return nil, fmt.Errorf("robustscaler: retraining needs a non-empty seed series")
	}
	if cfg.Every <= 0 {
		return nil, fmt.Errorf("robustscaler: RetrainConfig.Every must be positive, got %g", cfg.Every)
	}
	if build == nil {
		return nil, fmt.Errorf("robustscaler: nil PolicyBuilder")
	}
	p := &retrainingPolicy{cfg: cfg, build: build, series: seed.Clone()}
	if err := p.refit(); err != nil {
		return nil, err
	}
	return p, nil
}

// FitWindow fits a model on the trailing window seconds of the series
// (the whole series when window ≤ 0) — the refresh step shared by the
// replay wrapper below and the serving engine's background retrainer.
// Callers keep their previous model when it returns an error.
func FitWindow(series *timeseries.Series, window float64, cfg TrainConfig) (*Model, error) {
	return FitWindowWarm(series, window, cfg, nil)
}

// FitWindowWarm is FitWindow seeded from a previous model's ADMM
// solution (see TrainWarm). The serving engine passes the outgoing
// model's nhpp warm state here so steady-state refits — the same window
// slid forward a few bins — converge in a fraction of the cold
// iteration count.
func FitWindowWarm(series *timeseries.Series, window float64, cfg TrainConfig, warm *nhpp.WarmState) (*Model, error) {
	train := series
	if window > 0 {
		bins := int(window / series.Dt)
		if bins < 1 {
			bins = 1
		}
		if bins < train.Len() {
			train = train.Slice(train.Len()-bins, train.Len())
		}
	}
	return TrainWarm(train, cfg, warm)
}

// refit trains on the trailing window and swaps the inner policy.
func (p *retrainingPolicy) refit() error {
	model, err := FitWindow(p.series, p.cfg.Window, p.cfg.Train)
	if err != nil {
		return fmt.Errorf("robustscaler: retraining: %w", err)
	}
	inner, err := p.build(model)
	if err != nil {
		return fmt.Errorf("robustscaler: rebuilding policy: %w", err)
	}
	p.inner = inner
	return nil
}

// observe extends the count series through time t and records an arrival.
func (p *retrainingPolicy) observe(arrival float64) {
	idx := int(math.Floor((arrival - p.series.Start) / p.series.Dt))
	for idx >= p.series.Len() {
		p.series.Values = append(p.series.Values, 0)
	}
	if idx >= 0 {
		p.series.Values[idx]++
	}
}

// Init implements sim.Autoscaler.
func (p *retrainingPolicy) Init(ctx *sim.Context) {
	p.lastTrain = ctx.Now()
	p.inner.Init(ctx)
}

// OnTick implements sim.Autoscaler: retrain on schedule, then delegate.
func (p *retrainingPolicy) OnTick(ctx *sim.Context, now float64) {
	if now-p.lastTrain >= p.cfg.Every {
		p.lastTrain = now
		// Pad the series with empty bins up to now so quiet stretches are
		// part of the history.
		idx := int(math.Floor((now - p.series.Start) / p.series.Dt))
		for idx >= p.series.Len() {
			p.series.Values = append(p.series.Values, 0)
		}
		if err := p.refit(); err != nil {
			p.trainErrs++ // keep the previous model
		} else {
			p.inner.Init(ctx)
		}
	}
	p.inner.OnTick(ctx, now)
}

// OnArrival implements sim.Autoscaler.
func (p *retrainingPolicy) OnArrival(ctx *sim.Context, q sim.Query) {
	p.observe(q.Arrival)
	p.inner.OnArrival(ctx, q)
}
