package robustscaler_test

// bench_test.go wires every paper table/figure to a testing.B benchmark:
// `go test -bench=. -benchmem -timeout 45m` regenerates the full
// evaluation in Quick mode (reduced sweeps and horizons). The whole suite
// replays tens of thousands of queries per figure, so the default
// 10-minute test timeout is not enough — pass -timeout 45m (or bench a
// single figure). The paper-scale numbers come from
// `go run ./cmd/experiments -run all`, which uses the same drivers; see
// EXPERIMENTS.md for the recorded outputs.

import (
	"io"
	"sync"
	"testing"

	"robustscaler/internal/experiments"
)

var (
	benchRunnerOnce sync.Once
	benchRunner     *experiments.Runner
)

// benchRun executes one experiment driver b.N times, discarding output.
// All benches share one Runner so traces and models are built only once.
func benchRun(b *testing.B, id string) {
	b.Helper()
	benchRunnerOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.Options{Seed: 2022, Quick: true})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchRunner.RunAndPrint(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Traces regenerates the trace summaries of Fig. 3.
func BenchmarkFig3Traces(b *testing.B) { benchRun(b, "fig3") }

// BenchmarkFig4Pareto regenerates the Pareto sweeps of Fig. 4 (all three
// traces × five autoscalers).
func BenchmarkFig4Pareto(b *testing.B) { benchRun(b, "fig4") }

// BenchmarkFig5Variance regenerates the QoS-variance study of Fig. 5.
func BenchmarkFig5Variance(b *testing.B) { benchRun(b, "fig5") }

// BenchmarkFig67Perturb regenerates the perturbation comparison of
// Figs. 6–7.
func BenchmarkFig67Perturb(b *testing.B) { benchRun(b, "fig6-7") }

// BenchmarkFig8Scalability regenerates the decision-runtime scatter of
// Fig. 8.
func BenchmarkFig8Scalability(b *testing.B) { benchRun(b, "fig8") }

// BenchmarkFig9Robustness regenerates the anomaly/missing-data study of
// Fig. 9.
func BenchmarkFig9Robustness(b *testing.B) { benchRun(b, "fig9") }

// BenchmarkFig10Control regenerates the nominal-vs-actual and
// planning-frequency study of Fig. 10.
func BenchmarkFig10Control(b *testing.B) { benchRun(b, "fig10") }

// BenchmarkTable1Accuracy regenerates the Monte Carlo accuracy check of
// Table I.
func BenchmarkTable1Accuracy(b *testing.B) { benchRun(b, "table1") }

// BenchmarkTable2Quantiles regenerates the RT-quantile robustness check
// of Table II.
func BenchmarkTable2Quantiles(b *testing.B) { benchRun(b, "table2") }

// BenchmarkTable3Regularization regenerates the periodicity-regularization
// ablation of Table III.
func BenchmarkTable3Regularization(b *testing.B) { benchRun(b, "table3") }

// BenchmarkTable4RealEnv regenerates the simulated-vs-real comparison of
// Table IV.
func BenchmarkTable4RealEnv(b *testing.B) { benchRun(b, "table4") }

// BenchmarkAblationSolvers times the design alternatives from DESIGN.md:
// banded vs dense vs CG solves and Algorithm 3 vs naive bisection.
func BenchmarkAblationSolvers(b *testing.B) { benchRun(b, "ablation-solver") }

// BenchmarkAblationKappa compares local-intensity planning against a
// global intensity bound.
func BenchmarkAblationKappa(b *testing.B) { benchRun(b, "ablation-kappa") }
