// Command robustscale trains the NHPP arrival model on a trace and emits
// the upcoming proactive scaling plan: a list of absolute instance
// creation times computed by the selected stochastically constrained
// formulation.
//
// Usage:
//
//	robustscale -synthetic google -variant hp -target 0.9 -horizon 600
//	robustscale -trace workload.csv -variant rt -target 2 -pending 13
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"robustscaler"
	"robustscaler/internal/decision"
	"robustscaler/internal/stats"
	"robustscaler/internal/trace"
)

func main() {
	var (
		synthetic = flag.String("synthetic", "google", "built-in trace: crs, google, alibaba")
		traceFile = flag.String("trace", "", "CSV trace file (overrides -synthetic)")
		trainFrac = flag.Float64("train-frac", 0.75, "training fraction for CSV traces")
		variant   = flag.String("variant", "hp", "formulation: hp, rt, cost")
		target    = flag.Float64("target", 0.9, "target hit prob / wait budget (s) / idle budget (s)")
		pending   = flag.Float64("pending", 0, "pending time τ seconds (0 = trace default)")
		horizon   = flag.Float64("horizon", 600, "planning horizon in seconds")
		mcR       = flag.Int("mc", 1000, "Monte Carlo samples for rt/cost variants")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	tr, err := loadTrace(*traceFile, *synthetic, *trainFrac, *seed)
	if err != nil {
		fatal(err)
	}
	tau := tr.MeanPending
	if *pending > 0 {
		tau = *pending
	}
	if tau <= 0 {
		tau = 13
	}

	series := tr.TrainCountSeries(60)
	cfg := robustscaler.DefaultTrainConfig()
	cfg.Periodicity.AggregateWindow = 10
	cfg.Periodicity.MinPeriod = 3
	model, err := robustscaler.Train(series, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained on %d bins; detected period: %.0f s; ADMM iterations: %d (converged=%v)\n",
		series.Len(), model.PeriodSeconds, model.FitStats.Iterations, model.FitStats.Converged)

	now := tr.TrainEnd
	fmt.Printf("current time t0 = %.0f s; forecast intensity λ(t0) = %.4g qps\n", now, model.Rate(now))

	// κ threshold (eq. 8) under the local intensity bound.
	alpha := 0.1
	if *variant == "hp" {
		alpha = 1 - *target
	}
	kappa := decision.Kappa(model.Rate(now), stats.Deterministic{Value: tau}, alpha, nil, 0)
	fmt.Printf("κ threshold (eq. 8) at local intensity: %d arrivals\n", kappa)

	h := decision.NewHorizon(model.NHPP, now, 1, 0)
	rng := rand.New(rand.NewSource(*seed))
	tauSamples := make([]float64, *mcR)
	for i := range tauSamples {
		tauSamples[i] = tau
	}
	fmt.Printf("\nplan (variant=%s, target=%g, horizon=%.0f s):\n", *variant, *target, *horizon)
	fmt.Println("query#  create_at_s  lead_s")
	for i := 1; ; i++ {
		var x float64
		switch *variant {
		case "hp":
			q, ok := h.QuantileArrival(i, 1-*target)
			if !ok {
				return
			}
			x = q - tau
		case "rt", "cost":
			xi := make([]float64, *mcR)
			for s := range xi {
				u, ok := h.SampleArrival(rng, i)
				if !ok {
					return
				}
				xi[s] = u - now
			}
			if *variant == "rt" {
				x = now + decision.SolveRT(xi, tauSamples, *target)
			} else {
				x = now + decision.SolveCost(xi, tauSamples, *target)
			}
		default:
			fatal(fmt.Errorf("unknown variant %q", *variant))
		}
		if x < now {
			x = now
		}
		if x > now+*horizon {
			return
		}
		fmt.Printf("%6d  %11.1f  %6.1f\n", i, x, x-now)
	}
}

func loadTrace(file, synthetic string, trainFrac float64, seed int64) (*trace.Trace, error) {
	if file != "" {
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		return trace.ReadCSV(fh, file, trainFrac)
	}
	switch synthetic {
	case "crs":
		return trace.SyntheticCRS(seed), nil
	case "google":
		return trace.SyntheticGoogle(seed), nil
	case "alibaba":
		return trace.SyntheticAlibaba(seed), nil
	default:
		return nil, fmt.Errorf("unknown synthetic trace %q", synthetic)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
