// Command scalerd runs the RobustScaler HTTP control plane: one process
// serving any number of independent workloads, each with its own arrival
// history, NHPP model, scaling plans and per-workload configuration,
// plus a background worker pool that keeps every model fresh (the
// paper's low-frequency retraining, scaled out to a fleet of
// workloads).
//
// Endpoints (per workload; see internal/server for the full list):
//
//	POST   /v1/workloads/{id}/arrivals  {"timestamps": [t1, ...]}  record arrivals
//	                                    (also application/x-ndjson — one epoch per
//	                                    line — or application/octet-stream —
//	                                    little-endian float64s — optionally with
//	                                    Content-Encoding: gzip; all formats stream,
//	                                    and bodies are capped by -max-ingest-bytes)
//	POST   /v1/workloads/{id}/train                                (re)fit the NHPP model
//	GET    /v1/workloads/{id}/plan?variant=hp&target=0.9           upcoming creation times
//	GET    /v1/workloads/{id}/forecast?from=&to=&step=             predicted intensity
//	GET    /v1/workloads/{id}/status                               model/ingestion state
//	GET    /v1/workloads/{id}/stats                                per-workload counters (JSON)
//	GET    /v1/workloads/{id}/config                               per-workload config
//	PUT    /v1/workloads/{id}/config                               update per-workload config
//	GET    /v1/workloads                                           list workloads
//	POST   /v1/admin/snapshot                                      persist all workloads now
//	GET    /v1/admin/generations                                   list retained snapshot generations
//	POST   /v1/admin/restore-generation {"generation": N}          point-in-time restore
//	GET    /metrics                                                Prometheus exposition (whole fleet)
//	GET    /healthz                                                health; 503 "degraded" while
//	                                                               snapshots fail consecutively, 200
//	                                                               "degraded" after a lossy boot
//
// The engine flags below (-dt, -pending, -history, -mc) are fleet
// defaults: they seed the configuration each new workload starts from,
// and every knob except the seed and worker pools can then be tuned per
// workload at runtime via PUT /v1/workloads/{id}/config — including a
// per-workload retrain cadence (retrain_every), which rate-limits the
// sweep that -retrain-every schedules process-wide.
//
// With -data-dir set, scalerd is restart-safe: each workload's arrival
// history, fitted model and config are persisted as one file per
// workload under a CRC-checked manifest (atomically, every
// -snapshot-every seconds and on POST /v1/admin/snapshot) and restored
// on boot before serving, so a deploy causes no cold-start forecasting
// gap. Snapshots are incremental — a tick rewrites only workloads that
// changed since the last one, and the last -snapshot-retain committed
// generations stay on disk for point-in-time restore (over HTTP, or
// -restore-generation at boot). A data dir holding a pre-v2 monolithic
// snapshot is migrated in place on the first snapshot tick. A workload
// file that fails its checksum or won't parse is quarantined (moved
// under quarantine/, reported via /healthz) and the rest of the fleet
// boots; a corrupt manifest still fails the boot loudly.
//
// Between snapshots, every acknowledged ingest batch is appended to a
// per-workload write-ahead log under <data-dir>/wal before the HTTP
// 200 goes out, so a crash — even kill -9 — loses no acknowledged
// arrivals: boot replays each workload's log on top of its snapshot,
// truncating at the first torn or corrupt record. -wal-fsync picks the
// durability/latency trade-off: "always" fsyncs every append (no
// acknowledged write is ever lost), "interval" batches fsyncs on a
// -wal-fsync-interval cadence (a crash can lose at most the last
// interval; the default), "off" leaves flushing to the OS. Each
// successful snapshot truncates the logs it made redundant.
//
// On SIGTERM or SIGINT scalerd shuts down gracefully: it stops
// accepting connections, drains in-flight requests, stops the
// background retrainer and snapshotter, and (with -data-dir) writes a
// final snapshot before exiting.
//
// Example:
//
//	scalerd -listen :8080 -pending 13 -dt 60 -retrain-every 1800 -retrain-workers 4 \
//	        -data-dir /var/lib/scalerd -snapshot-every 300
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"robustscaler/internal/engine"
	"robustscaler/internal/server"
	"robustscaler/internal/store"
	"robustscaler/internal/wal"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before closing their connections anyway.
const shutdownGrace = 15 * time.Second

func main() {
	var (
		listen         = flag.String("listen", ":8080", "HTTP listen address")
		pending        = flag.Float64("pending", 13, "default instance pending time τ seconds (per-workload override: PUT /config)")
		dt             = flag.Float64("dt", 60, "default modeling bin width seconds (per-workload override: PUT /config)")
		history        = flag.Float64("history", 28*86400, "default retained arrival history seconds (per-workload override: PUT /config)")
		mc             = flag.Int("mc", 1000, "default Monte Carlo samples for rt/cost plans (per-workload override: PUT /config)")
		mcWorkers      = flag.Int("mc-workers", 0, "worker pool for Monte Carlo draws per plan (0 = GOMAXPROCS); plans are identical for every value")
		seed           = flag.Int64("seed", 1, "random seed")
		maxIngest      = flag.Int64("max-ingest-bytes", server.DefaultMaxIngestBytes, "max arrivals body size in bytes, before and after decompression (413 beyond it; 0 disables)")
		retrainEvery   = flag.Float64("retrain-every", 1800, "background retrain sweep period seconds (0 disables); per-workload cadence via PUT /config retrain_every")
		retrainWorkers = flag.Int("retrain-workers", 4, "background retraining worker pool size")
		dataDir        = flag.String("data-dir", "", "directory for workload snapshots; empty disables persistence")
		snapshotEvery  = flag.Float64("snapshot-every", 300, "background snapshot period seconds (0 disables; needs -data-dir)")
		snapshotRetain = flag.Int("snapshot-retain", 5, "committed snapshot generations kept for point-in-time restore (min 1)")
		restoreGen     = flag.Uint64("restore-generation", 0, "boot from this retained snapshot generation instead of the current one (0 = current; needs -data-dir)")
		walFsync       = flag.String("wal-fsync", "interval", "write-ahead log fsync policy: always (every append), interval (batched), off; per-workload override via PUT /config wal.fsync")
		walFsyncEvery  = flag.Float64("wal-fsync-interval", 0.1, "fsync cadence seconds for -wal-fsync=interval")
		walSegment     = flag.Int64("wal-segment-bytes", wal.DefaultSegmentBytes, "write-ahead log segment rotation size in bytes")
		staleThreshold = flag.Float64("staleness-threshold", 3600, "seconds a workload may carry unmodeled traffic before it counts into robustscaler_workloads_stale_over_threshold (0 disables)")
	)
	flag.Parse()
	snapshotEverySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "snapshot-every" {
			snapshotEverySet = true
		}
	})

	cfg := server.DefaultConfig()
	cfg.Pending = *pending
	cfg.Dt = *dt
	cfg.HistoryWindow = *history
	cfg.MCSamples = *mc
	cfg.MCWorkers = *mcWorkers
	cfg.Seed = *seed
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *maxIngest < 0 {
		log.Fatalf("-max-ingest-bytes %d invalid (bytes; 0 disables)", *maxIngest)
	}
	s.SetMaxIngestBytes(*maxIngest)
	if math.IsNaN(*retrainEvery) || *retrainEvery < 0 {
		log.Fatalf("-retrain-every %g invalid (seconds; 0 disables)", *retrainEvery)
	}

	var st *store.Store
	var snapshotter *engine.Snapshotter
	var walMgr *wal.Manager
	if *dataDir != "" {
		// Open validates the manifest and sweeps crash debris; restore
		// must finish before serving so requests never race a
		// half-restored registry. A corrupt manifest aborts the boot —
		// starting cold would soon overwrite the evidence with a fresh
		// empty snapshot. Individually corrupt workload files are
		// quarantined instead: the rest of the fleet boots and /healthz
		// reports "degraded" with the casualty list.
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Fatalf("opening -data-dir %s: %v (move its contents aside to boot cold)", *dataDir, err)
		}
		if *snapshotRetain < 1 {
			log.Fatalf("-snapshot-retain %d invalid (min 1: the current generation)", *snapshotRetain)
		}
		st.SetRetain(*snapshotRetain)
		if *restoreGen != 0 {
			// Point-in-time restore: repoint the manifest before anything
			// reads it. The restore commits a new generation, so the
			// pre-restore state stays retained (and recoverable) too.
			if err := st.RestoreGeneration(*restoreGen); err != nil {
				log.Fatalf("-restore-generation %d: %v", *restoreGen, err)
			}
			log.Printf("rolled back to snapshot generation %d", *restoreGen)
		}
		n, quarantined, err := s.Registry().RestoreFromTolerant(st)
		if err != nil {
			log.Fatalf("restoring snapshot from %s: %v (move its contents aside to boot cold)", *dataDir, err)
		}
		for _, q := range quarantined {
			log.Printf("quarantined workload %s (%s): %s", q.ID, q.File, q.Reason)
		}
		if n > 0 {
			log.Printf("restored %d workloads from %s", n, *dataDir)
		}

		// The write-ahead log opens after the snapshot restore and before
		// serving: every batch acknowledged from here on is durable, and
		// records the last process wrote after its final snapshot are
		// replayed on top of the restored state.
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("-wal-fsync: %v", err)
		}
		if math.IsNaN(*walFsyncEvery) || *walFsyncEvery <= 0 || *walFsyncEvery > 3600 {
			log.Fatalf("-wal-fsync-interval %g invalid (seconds, 0..3600 exclusive low)", *walFsyncEvery)
		}
		if *walSegment < 1 {
			log.Fatalf("-wal-segment-bytes %d invalid (min 1)", *walSegment)
		}
		walMgr, err = wal.Open(wal.Options{
			Dir:          filepath.Join(*dataDir, "wal"),
			Policy:       policy,
			Interval:     time.Duration(*walFsyncEvery * float64(time.Second)),
			SegmentBytes: *walSegment,
		})
		if err != nil {
			log.Fatalf("opening write-ahead log under %s: %v", *dataDir, err)
		}
		if *restoreGen != 0 {
			// The logs describe the timeline the rollback just abandoned;
			// replaying them over the older snapshot would interleave two
			// histories.
			if err := walMgr.ResetAll(); err != nil {
				log.Fatalf("resetting write-ahead logs after rollback: %v", err)
			}
		}
		if err := s.Registry().AttachWAL(walMgr, *dataDir); err != nil {
			log.Fatalf("attaching write-ahead log: %v", err)
		}
		rep, err := s.Registry().ReplayWAL()
		if err != nil {
			log.Fatalf("replaying write-ahead log: %v", err)
		}
		if rep.Records > 0 || rep.Truncations > 0 || len(rep.Reset) > 0 {
			log.Printf("wal replay: %d workloads, %d records (%d events), %d truncated tails, %d logs reset",
				rep.Workloads, rep.Records, rep.Events, rep.Truncations, len(rep.Reset))
		}
		walMgr.Instrument(s.Metrics())
		s.SetBootDegraded(quarantined, rep.Reset)
		s.SetStore(st)
		if math.IsNaN(*snapshotEvery) || *snapshotEvery < 0 {
			log.Fatalf("-snapshot-every %g invalid (seconds; 0 disables)", *snapshotEvery)
		}
		if *snapshotEvery > 0 {
			every := time.Duration(*snapshotEvery * float64(time.Second))
			if every <= 0 || *snapshotEvery > 365*86400 {
				log.Fatalf("-snapshot-every %g out of range (ns..1 year, in seconds)", *snapshotEvery)
			}
			snapshotter = s.Registry().StartSnapshotter(st, every)
			log.Printf("snapshotting to %s every %.0fs (incremental)", *dataDir, *snapshotEvery)
		}
	} else if snapshotEverySet && *snapshotEvery != 0 {
		// Asking for periodic snapshots without a place to put them is a
		// misconfiguration; explicitly disabling them (0) is not.
		log.Fatalf("-snapshot-every needs -data-dir")
	} else if *restoreGen != 0 {
		log.Fatalf("-restore-generation needs -data-dir")
	}
	if math.IsNaN(*staleThreshold) || *staleThreshold < 0 {
		log.Fatalf("-staleness-threshold %g invalid (seconds; 0 disables)", *staleThreshold)
	}
	s.Registry().SetStalenessThreshold(*staleThreshold)
	var retrainer *engine.Retrainer
	if *retrainEvery > 0 {
		// Validate the converted duration: a huge value overflows
		// float→Duration to a negative period, a sub-nanosecond one
		// truncates to zero.
		every := time.Duration(*retrainEvery * float64(time.Second))
		if every <= 0 || *retrainEvery > 365*86400 {
			log.Fatalf("-retrain-every %g out of range (ns..1 year, in seconds)", *retrainEvery)
		}
		retrainer = s.Registry().StartRetrainer(every, *retrainWorkers)
		log.Printf("background retraining every %.0fs with %d workers", *retrainEvery, *retrainWorkers)
	}
	log.Printf("scalerd listening on %s (τ=%.0fs, Δt=%.0fs); metrics on /metrics", *listen, *pending, *dt)

	srv := &http.Server{Addr: *listen, Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// Bind failure or an unexpected listener death: nothing to drain.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v, shutting down", sig)
	}

	// Drain in-flight HTTP first so the final snapshot sees their
	// effects, then stop the background loops. Snapshotter.Stop writes
	// the final snapshot itself; without a snapshotter (snapshot-every
	// 0) but with persistence on, take one explicitly.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The final snapshot below may miss the killed requests'
			// effects; say so instead of reporting a clean drain.
			log.Printf("http drain incomplete after %v; remaining connections closed", shutdownGrace)
		} else {
			log.Printf("http shutdown: %v", err)
		}
	}
	if retrainer != nil {
		retrainer.Stop()
	}
	switch {
	case snapshotter != nil:
		if err := snapshotter.Stop(); err != nil {
			log.Printf("final snapshot failed: %v", err)
		} else {
			log.Printf("final snapshot written to %s", *dataDir)
		}
	case st != nil:
		if _, err := s.Registry().SnapshotTo(st); err != nil {
			log.Printf("final snapshot failed: %v", err)
		} else {
			log.Printf("final snapshot written to %s", *dataDir)
		}
	}
	// The WAL closes after the final snapshot: the snapshot truncates
	// the logs it made redundant, and Close flushes whatever the
	// interval fsync policy still holds dirty.
	if walMgr != nil {
		if err := walMgr.Close(); err != nil {
			log.Printf("closing write-ahead log: %v", err)
		}
	}
	log.Print("shutdown complete")
}
