// Command scalerd runs the RobustScaler HTTP control plane: one process
// serving any number of independent workloads, each with its own arrival
// history, NHPP model and scaling plans, plus a background worker pool
// that keeps every model fresh (the paper's low-frequency retraining,
// scaled out to a fleet of workloads).
//
// Endpoints (per workload; see internal/server for the full list):
//
//	POST   /v1/workloads/{id}/arrivals  {"timestamps": [t1, ...]}  record arrivals
//	POST   /v1/workloads/{id}/train                                (re)fit the NHPP model
//	GET    /v1/workloads/{id}/plan?variant=hp&target=0.9           upcoming creation times
//	GET    /v1/workloads/{id}/forecast?from=&to=&step=             predicted intensity
//	GET    /v1/workloads/{id}/status                               model/ingestion state
//	GET    /v1/workloads                                           list workloads
//	GET    /healthz                                                liveness
//
// The legacy single-workload routes (/v1/arrivals, /v1/train, /v1/plan,
// /v1/forecast, /v1/status) serve the "default" workload.
//
// Example:
//
//	scalerd -listen :8080 -pending 13 -dt 60 -retrain-every 1800 -retrain-workers 4
package main

import (
	"flag"
	"log"
	"math"
	"net/http"
	"time"

	"robustscaler/internal/server"
)

func main() {
	var (
		listen         = flag.String("listen", ":8080", "HTTP listen address")
		pending        = flag.Float64("pending", 13, "instance pending time τ seconds")
		dt             = flag.Float64("dt", 60, "modeling bin width seconds")
		history        = flag.Float64("history", 28*86400, "retained arrival history seconds")
		mc             = flag.Int("mc", 1000, "Monte Carlo samples for rt/cost plans")
		seed           = flag.Int64("seed", 1, "random seed")
		retrainEvery   = flag.Float64("retrain-every", 1800, "background retrain period seconds (0 disables)")
		retrainWorkers = flag.Int("retrain-workers", 4, "background retraining worker pool size")
	)
	flag.Parse()

	cfg := server.DefaultConfig()
	cfg.Pending = *pending
	cfg.Dt = *dt
	cfg.HistoryWindow = *history
	cfg.MCSamples = *mc
	cfg.Seed = *seed
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if math.IsNaN(*retrainEvery) || *retrainEvery < 0 {
		log.Fatalf("-retrain-every %g invalid (seconds; 0 disables)", *retrainEvery)
	}
	if *retrainEvery > 0 {
		// Validate the converted duration: a huge value overflows
		// float→Duration to a negative period, a sub-nanosecond one
		// truncates to zero.
		every := time.Duration(*retrainEvery * float64(time.Second))
		if every <= 0 || *retrainEvery > 365*86400 {
			log.Fatalf("-retrain-every %g out of range (ns..1 year, in seconds)", *retrainEvery)
		}
		// The retrainer runs for the life of the process; log.Fatal below
		// exits without unwinding, so there is no Stop to arrange.
		s.Registry().StartRetrainer(every, *retrainWorkers)
		log.Printf("background retraining every %.0fs with %d workers", *retrainEvery, *retrainWorkers)
	}
	log.Printf("scalerd listening on %s (τ=%.0fs, Δt=%.0fs)", *listen, *pending, *dt)
	log.Fatal(http.ListenAndServe(*listen, s.Handler()))
}
