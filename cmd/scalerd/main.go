// Command scalerd runs the RobustScaler HTTP control plane — the
// integration surface for a cluster autoscaler (e.g. a Kubernetes
// operator that provisions pods ahead of predicted queries).
//
// Endpoints:
//
//	POST /v1/arrivals  {"timestamps": [t1, t2, ...]}   record query arrivals
//	POST /v1/train                                      (re)fit the NHPP model
//	GET  /v1/plan?variant=hp&target=0.9&horizon=600     upcoming creation times
//	GET  /v1/forecast?from=&to=&step=                   predicted intensity
//	GET  /v1/status                                     model/ingestion state
//	GET  /healthz                                       liveness
//
// Example:
//
//	scalerd -listen :8080 -pending 13 -dt 60
package main

import (
	"flag"
	"log"
	"net/http"

	"robustscaler/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		pending = flag.Float64("pending", 13, "instance pending time τ seconds")
		dt      = flag.Float64("dt", 60, "modeling bin width seconds")
		history = flag.Float64("history", 28*86400, "retained arrival history seconds")
		mc      = flag.Int("mc", 1000, "Monte Carlo samples for rt/cost plans")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := server.DefaultConfig()
	cfg.Pending = *pending
	cfg.Dt = *dt
	cfg.HistoryWindow = *history
	cfg.MCSamples = *mc
	cfg.Seed = *seed
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scalerd listening on %s (τ=%.0fs, Δt=%.0fs)", *listen, *pending, *dt)
	log.Fatal(http.ListenAndServe(*listen, s.Handler()))
}
