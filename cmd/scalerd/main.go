// Command scalerd runs the RobustScaler HTTP control plane: one process
// serving any number of independent workloads, each with its own arrival
// history, NHPP model and scaling plans, plus a background worker pool
// that keeps every model fresh (the paper's low-frequency retraining,
// scaled out to a fleet of workloads).
//
// Endpoints (per workload; see internal/server for the full list):
//
//	POST   /v1/workloads/{id}/arrivals  {"timestamps": [t1, ...]}  record arrivals
//	                                    (also application/x-ndjson — one epoch per
//	                                    line — or application/octet-stream —
//	                                    little-endian float64s — optionally with
//	                                    Content-Encoding: gzip; bodies are capped
//	                                    by -max-ingest-bytes)
//	POST   /v1/workloads/{id}/train                                (re)fit the NHPP model
//	GET    /v1/workloads/{id}/plan?variant=hp&target=0.9           upcoming creation times
//	GET    /v1/workloads/{id}/forecast?from=&to=&step=             predicted intensity
//	GET    /v1/workloads/{id}/status                               model/ingestion state
//	GET    /v1/workloads                                           list workloads
//	POST   /v1/admin/snapshot                                      persist all workloads now
//	GET    /healthz                                                liveness
//
// The legacy single-workload routes (/v1/arrivals, /v1/train, /v1/plan,
// /v1/forecast, /v1/status) serve the "default" workload.
//
// With -data-dir set, scalerd is restart-safe: every workload's arrival
// history, fitted model and config are snapshotted to disk (atomically,
// every -snapshot-every seconds and on POST /v1/admin/snapshot) and
// restored on boot before serving, so a deploy causes no cold-start
// forecasting gap. A corrupt snapshot fails the boot loudly rather than
// silently starting cold; delete the snapshot file to boot cold on
// purpose.
//
// Example:
//
//	scalerd -listen :8080 -pending 13 -dt 60 -retrain-every 1800 -retrain-workers 4 \
//	        -data-dir /var/lib/scalerd -snapshot-every 300
package main

import (
	"flag"
	"log"
	"math"
	"net/http"
	"os"
	"time"

	"robustscaler/internal/server"
	"robustscaler/internal/store"
)

func main() {
	var (
		listen         = flag.String("listen", ":8080", "HTTP listen address")
		pending        = flag.Float64("pending", 13, "instance pending time τ seconds")
		dt             = flag.Float64("dt", 60, "modeling bin width seconds")
		history        = flag.Float64("history", 28*86400, "retained arrival history seconds")
		mc             = flag.Int("mc", 1000, "Monte Carlo samples for rt/cost plans")
		mcWorkers      = flag.Int("mc-workers", 0, "worker pool for Monte Carlo draws per plan (0 = GOMAXPROCS); plans are identical for every value")
		seed           = flag.Int64("seed", 1, "random seed")
		maxIngest      = flag.Int64("max-ingest-bytes", server.DefaultMaxIngestBytes, "max arrivals body size in bytes, before and after decompression (413 beyond it; 0 disables)")
		retrainEvery   = flag.Float64("retrain-every", 1800, "background retrain period seconds (0 disables)")
		retrainWorkers = flag.Int("retrain-workers", 4, "background retraining worker pool size")
		dataDir        = flag.String("data-dir", "", "directory for workload snapshots; empty disables persistence")
		snapshotEvery  = flag.Float64("snapshot-every", 300, "background snapshot period seconds (0 disables; needs -data-dir)")
	)
	flag.Parse()
	snapshotEverySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "snapshot-every" {
			snapshotEverySet = true
		}
	})

	cfg := server.DefaultConfig()
	cfg.Pending = *pending
	cfg.Dt = *dt
	cfg.HistoryWindow = *history
	cfg.MCSamples = *mc
	cfg.MCWorkers = *mcWorkers
	cfg.Seed = *seed
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *maxIngest < 0 {
		log.Fatalf("-max-ingest-bytes %d invalid (bytes; 0 disables)", *maxIngest)
	}
	s.SetMaxIngestBytes(*maxIngest)
	if math.IsNaN(*retrainEvery) || *retrainEvery < 0 {
		log.Fatalf("-retrain-every %g invalid (seconds; 0 disables)", *retrainEvery)
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("creating -data-dir: %v", err)
		}
		// Restore before serving: requests must never race a half-restored
		// registry. A corrupt snapshot aborts the boot — starting cold
		// would soon overwrite the evidence with a fresh empty snapshot.
		n, err := s.Registry().Restore(*dataDir)
		if err != nil {
			log.Fatalf("restoring snapshot from %s: %v (delete %s/%s to boot cold)",
				*dataDir, err, *dataDir, store.SnapshotFile)
		}
		if n > 0 {
			log.Printf("restored %d workloads from %s", n, *dataDir)
		}
		s.SetDataDir(*dataDir)
		if math.IsNaN(*snapshotEvery) || *snapshotEvery < 0 {
			log.Fatalf("-snapshot-every %g invalid (seconds; 0 disables)", *snapshotEvery)
		}
		if *snapshotEvery > 0 {
			every := time.Duration(*snapshotEvery * float64(time.Second))
			if every <= 0 || *snapshotEvery > 365*86400 {
				log.Fatalf("-snapshot-every %g out of range (ns..1 year, in seconds)", *snapshotEvery)
			}
			// Like the retrainer, the snapshotter runs for the life of the
			// process; log.Fatal exits without unwinding.
			s.Registry().StartSnapshotter(*dataDir, every)
			log.Printf("snapshotting to %s every %.0fs", *dataDir, *snapshotEvery)
		}
	} else if snapshotEverySet && *snapshotEvery != 0 {
		// Asking for periodic snapshots without a place to put them is a
		// misconfiguration; explicitly disabling them (0) is not.
		log.Fatalf("-snapshot-every needs -data-dir")
	}
	if *retrainEvery > 0 {
		// Validate the converted duration: a huge value overflows
		// float→Duration to a negative period, a sub-nanosecond one
		// truncates to zero.
		every := time.Duration(*retrainEvery * float64(time.Second))
		if every <= 0 || *retrainEvery > 365*86400 {
			log.Fatalf("-retrain-every %g out of range (ns..1 year, in seconds)", *retrainEvery)
		}
		// The retrainer runs for the life of the process; log.Fatal below
		// exits without unwinding, so there is no Stop to arrange.
		s.Registry().StartRetrainer(every, *retrainWorkers)
		log.Printf("background retraining every %.0fs with %d workers", *retrainEvery, *retrainWorkers)
	}
	log.Printf("scalerd listening on %s (τ=%.0fs, Δt=%.0fs)", *listen, *pending, *dt)
	log.Fatal(http.ListenAndServe(*listen, s.Handler()))
}
