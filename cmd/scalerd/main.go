// Command scalerd runs the RobustScaler HTTP control plane: one process
// serving any number of independent workloads, each with its own arrival
// history, NHPP model, scaling plans and per-workload configuration,
// plus a background worker pool that keeps every model fresh (the
// paper's low-frequency retraining, scaled out to a fleet of
// workloads).
//
// Endpoints (per workload; see internal/server for the full list):
//
//	POST   /v1/workloads/{id}/arrivals  {"timestamps": [t1, ...]}  record arrivals
//	                                    (also application/x-ndjson — one epoch per
//	                                    line — or application/octet-stream —
//	                                    little-endian float64s — optionally with
//	                                    Content-Encoding: gzip; all formats stream,
//	                                    and bodies are capped by -max-ingest-bytes)
//	POST   /v1/workloads/{id}/train                                (re)fit the NHPP model
//	GET    /v1/workloads/{id}/plan?variant=hp&target=0.9           upcoming creation times
//	GET    /v1/workloads/{id}/forecast?from=&to=&step=             predicted intensity
//	GET    /v1/workloads/{id}/status                               model/ingestion state
//	GET    /v1/workloads/{id}/stats                                per-workload counters (JSON)
//	GET    /v1/workloads/{id}/config                               per-workload config
//	PUT    /v1/workloads/{id}/config                               update per-workload config
//	GET    /v1/workloads                                           list workloads
//	POST   /v1/admin/snapshot                                      persist all workloads now
//	GET    /metrics                                                Prometheus exposition (whole fleet)
//	GET    /healthz                                                health; 503 "degraded" while
//	                                                               snapshots fail consecutively
//
// The legacy single-workload routes (/v1/arrivals, /v1/train, /v1/plan,
// /v1/forecast, /v1/status) serve the "default" workload.
//
// The engine flags below (-dt, -pending, -history, -mc) are fleet
// defaults: they seed the configuration each new workload starts from,
// and every knob except the seed and worker pools can then be tuned per
// workload at runtime via PUT /v1/workloads/{id}/config — including a
// per-workload retrain cadence (retrain_every), which rate-limits the
// sweep that -retrain-every schedules process-wide.
//
// With -data-dir set, scalerd is restart-safe: each workload's arrival
// history, fitted model and config are persisted as one file per
// workload under a CRC-checked manifest (atomically, every
// -snapshot-every seconds and on POST /v1/admin/snapshot) and restored
// on boot before serving, so a deploy causes no cold-start forecasting
// gap. Snapshots are incremental — a tick rewrites only workloads that
// changed since the last one. A data dir holding a pre-v2 monolithic
// snapshot is migrated in place on the first snapshot tick. A corrupt
// snapshot fails the boot loudly rather than silently starting cold;
// delete the data dir's contents to boot cold on purpose.
//
// On SIGTERM or SIGINT scalerd shuts down gracefully: it stops
// accepting connections, drains in-flight requests, stops the
// background retrainer and snapshotter, and (with -data-dir) writes a
// final snapshot before exiting.
//
// Example:
//
//	scalerd -listen :8080 -pending 13 -dt 60 -retrain-every 1800 -retrain-workers 4 \
//	        -data-dir /var/lib/scalerd -snapshot-every 300
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"robustscaler/internal/engine"
	"robustscaler/internal/server"
	"robustscaler/internal/store"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before closing their connections anyway.
const shutdownGrace = 15 * time.Second

func main() {
	var (
		listen         = flag.String("listen", ":8080", "HTTP listen address")
		pending        = flag.Float64("pending", 13, "default instance pending time τ seconds (per-workload override: PUT /config)")
		dt             = flag.Float64("dt", 60, "default modeling bin width seconds (per-workload override: PUT /config)")
		history        = flag.Float64("history", 28*86400, "default retained arrival history seconds (per-workload override: PUT /config)")
		mc             = flag.Int("mc", 1000, "default Monte Carlo samples for rt/cost plans (per-workload override: PUT /config)")
		mcWorkers      = flag.Int("mc-workers", 0, "worker pool for Monte Carlo draws per plan (0 = GOMAXPROCS); plans are identical for every value")
		seed           = flag.Int64("seed", 1, "random seed")
		maxIngest      = flag.Int64("max-ingest-bytes", server.DefaultMaxIngestBytes, "max arrivals body size in bytes, before and after decompression (413 beyond it; 0 disables)")
		retrainEvery   = flag.Float64("retrain-every", 1800, "background retrain sweep period seconds (0 disables); per-workload cadence via PUT /config retrain_every")
		retrainWorkers = flag.Int("retrain-workers", 4, "background retraining worker pool size")
		dataDir        = flag.String("data-dir", "", "directory for workload snapshots; empty disables persistence")
		snapshotEvery  = flag.Float64("snapshot-every", 300, "background snapshot period seconds (0 disables; needs -data-dir)")
	)
	flag.Parse()
	snapshotEverySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "snapshot-every" {
			snapshotEverySet = true
		}
	})

	cfg := server.DefaultConfig()
	cfg.Pending = *pending
	cfg.Dt = *dt
	cfg.HistoryWindow = *history
	cfg.MCSamples = *mc
	cfg.MCWorkers = *mcWorkers
	cfg.Seed = *seed
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *maxIngest < 0 {
		log.Fatalf("-max-ingest-bytes %d invalid (bytes; 0 disables)", *maxIngest)
	}
	s.SetMaxIngestBytes(*maxIngest)
	if math.IsNaN(*retrainEvery) || *retrainEvery < 0 {
		log.Fatalf("-retrain-every %g invalid (seconds; 0 disables)", *retrainEvery)
	}

	var st *store.Store
	var snapshotter *engine.Snapshotter
	if *dataDir != "" {
		// Open validates the manifest and sweeps crash debris; restore
		// must finish before serving so requests never race a
		// half-restored registry. A corrupt snapshot aborts the boot —
		// starting cold would soon overwrite the evidence with a fresh
		// empty snapshot.
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Fatalf("opening -data-dir %s: %v (move its contents aside to boot cold)", *dataDir, err)
		}
		n, err := s.Registry().RestoreFrom(st)
		if err != nil {
			log.Fatalf("restoring snapshot from %s: %v (move its contents aside to boot cold)", *dataDir, err)
		}
		if n > 0 {
			log.Printf("restored %d workloads from %s", n, *dataDir)
		}
		s.SetStore(st)
		if math.IsNaN(*snapshotEvery) || *snapshotEvery < 0 {
			log.Fatalf("-snapshot-every %g invalid (seconds; 0 disables)", *snapshotEvery)
		}
		if *snapshotEvery > 0 {
			every := time.Duration(*snapshotEvery * float64(time.Second))
			if every <= 0 || *snapshotEvery > 365*86400 {
				log.Fatalf("-snapshot-every %g out of range (ns..1 year, in seconds)", *snapshotEvery)
			}
			snapshotter = s.Registry().StartSnapshotter(st, every)
			log.Printf("snapshotting to %s every %.0fs (incremental)", *dataDir, *snapshotEvery)
		}
	} else if snapshotEverySet && *snapshotEvery != 0 {
		// Asking for periodic snapshots without a place to put them is a
		// misconfiguration; explicitly disabling them (0) is not.
		log.Fatalf("-snapshot-every needs -data-dir")
	}
	var retrainer *engine.Retrainer
	if *retrainEvery > 0 {
		// Validate the converted duration: a huge value overflows
		// float→Duration to a negative period, a sub-nanosecond one
		// truncates to zero.
		every := time.Duration(*retrainEvery * float64(time.Second))
		if every <= 0 || *retrainEvery > 365*86400 {
			log.Fatalf("-retrain-every %g out of range (ns..1 year, in seconds)", *retrainEvery)
		}
		retrainer = s.Registry().StartRetrainer(every, *retrainWorkers)
		log.Printf("background retraining every %.0fs with %d workers", *retrainEvery, *retrainWorkers)
	}
	log.Printf("scalerd listening on %s (τ=%.0fs, Δt=%.0fs); metrics on /metrics", *listen, *pending, *dt)

	srv := &http.Server{Addr: *listen, Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// Bind failure or an unexpected listener death: nothing to drain.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v, shutting down", sig)
	}

	// Drain in-flight HTTP first so the final snapshot sees their
	// effects, then stop the background loops. Snapshotter.Stop writes
	// the final snapshot itself; without a snapshotter (snapshot-every
	// 0) but with persistence on, take one explicitly.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The final snapshot below may miss the killed requests'
			// effects; say so instead of reporting a clean drain.
			log.Printf("http drain incomplete after %v; remaining connections closed", shutdownGrace)
		} else {
			log.Printf("http shutdown: %v", err)
		}
	}
	if retrainer != nil {
		retrainer.Stop()
	}
	switch {
	case snapshotter != nil:
		if err := snapshotter.Stop(); err != nil {
			log.Printf("final snapshot failed: %v", err)
		} else {
			log.Printf("final snapshot written to %s", *dataDir)
		}
	case st != nil:
		if _, err := s.Registry().SnapshotTo(st); err != nil {
			log.Printf("final snapshot failed: %v", err)
		} else {
			log.Printf("final snapshot written to %s", *dataDir)
		}
	}
	log.Print("shutdown complete")
}
