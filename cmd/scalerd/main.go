// Command scalerd runs the RobustScaler HTTP control plane: one process
// serving any number of independent workloads, each with its own arrival
// history, NHPP model, scaling plans and per-workload configuration,
// plus a background worker pool that keeps every model fresh (the
// paper's low-frequency retraining, scaled out to a fleet of
// workloads).
//
// Endpoints (per workload; see internal/server for the full list):
//
//	POST   /v1/workloads/{id}/arrivals  {"timestamps": [t1, ...]}  record arrivals
//	                                    (also application/x-ndjson — one epoch per
//	                                    line — or application/octet-stream —
//	                                    little-endian float64s — optionally with
//	                                    Content-Encoding: gzip; all formats stream,
//	                                    and bodies are capped by -max-ingest-bytes)
//	POST   /v1/workloads/{id}/train                                (re)fit the NHPP model
//	GET    /v1/workloads/{id}/plan?variant=hp&target=0.9           upcoming creation times
//	GET    /v1/workloads/{id}/forecast?from=&to=&step=             predicted intensity
//	GET    /v1/workloads/{id}/recommendation                       replica recommendation (HPA-style)
//	GET    /v1/workloads/{id}/status                               model/ingestion state
//	GET    /v1/workloads/{id}/stats                                per-workload counters (JSON)
//	GET    /v1/workloads/{id}/config                               per-workload config
//	PUT    /v1/workloads/{id}/config                               update per-workload config
//	GET    /v1/workloads                                           list workloads
//	PUT    /v1/admin/config             {"glob": "...", "config": {...}}  bulk config update
//	POST   /v1/admin/snapshot                                      persist all workloads now
//	GET    /v1/admin/generations                                   list retained snapshot generations
//	POST   /v1/admin/restore-generation {"generation": N}          point-in-time restore
//	GET    /metrics                                                Prometheus exposition (whole fleet)
//	GET    /healthz                                                health; 503 "degraded" while
//	                                                               snapshots fail consecutively, 200
//	                                                               "degraded" after a lossy boot
//
// With -fleet-nodes N (N > 1), scalerd runs N shared-nothing nodes in
// one process behind a consistent-hash router (internal/fleet): each
// node owns a slice of the workload space — its own registry, snapshot
// store under <data-dir>/nK and write-ahead log — per-workload routes
// are forwarded to the owning node, fleet-wide routes (/metrics,
// /healthz, /v1/workloads, PUT /v1/admin/config, snapshots) are
// scatter-gathered, and two admin routes appear: GET /v1/admin/fleet
// (topology: members, ring shares, pins, placement) and POST
// /v1/admin/migrate {"workload": "...", "to": "nK"} (live migration —
// snapshot handoff plus WAL-tail catch-up; ingest pauses only for the
// tail). Every member's full surface stays reachable under
// /v1/nodes/{node}/; point-in-time restore is per-node there. The
// default -fleet-nodes 1 serves the single node's handler directly —
// exactly the surface scalerd has always had.
//
// The engine flags below (-dt, -pending, -history, -mc) are fleet
// defaults: they seed the configuration each new workload starts from,
// and every knob except the seed and worker pools can then be tuned per
// workload at runtime via PUT /v1/workloads/{id}/config — including a
// per-workload retrain cadence (retrain_every), which rate-limits the
// sweep that -retrain-every schedules process-wide.
//
// With -data-dir set, scalerd is restart-safe: each workload's arrival
// history, fitted model and config are persisted as one file per
// workload under a CRC-checked manifest (atomically, every
// -snapshot-every seconds and on POST /v1/admin/snapshot) and restored
// on boot before serving, so a deploy causes no cold-start forecasting
// gap. Snapshots are incremental — a tick rewrites only workloads that
// changed since the last one, and the last -snapshot-retain committed
// generations stay on disk for point-in-time restore (over HTTP, or
// -restore-generation at boot). A data dir holding a pre-v2 monolithic
// snapshot is migrated in place on the first snapshot tick. A workload
// file that fails its checksum or won't parse is quarantined (moved
// under quarantine/, reported via /healthz) and the rest of the fleet
// boots; a corrupt manifest still fails the boot loudly.
//
// Between snapshots, every acknowledged ingest batch is appended to a
// per-workload write-ahead log under the data dir's wal/ before the
// HTTP 200 goes out, so a crash — even kill -9 — loses no acknowledged
// arrivals: boot replays each workload's log on top of its snapshot,
// truncating at the first torn or corrupt record. -wal-fsync picks the
// durability/latency trade-off: "always" fsyncs every append (no
// acknowledged write is ever lost), "interval" batches fsyncs on a
// -wal-fsync-interval cadence (a crash can lose at most the last
// interval; the default), "off" leaves flushing to the OS. Each
// successful snapshot truncates the logs it made redundant.
//
// On SIGTERM or SIGINT scalerd shuts down gracefully: it stops
// accepting connections, drains in-flight requests, then closes every
// node — stopping its background loops and (with -data-dir) writing a
// final snapshot before exiting.
//
// Example:
//
//	scalerd -listen :8080 -pending 13 -dt 60 -retrain-every 1800 -retrain-workers 4 \
//	        -data-dir /var/lib/scalerd -snapshot-every 300 -fleet-nodes 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"robustscaler/internal/fleet"
	"robustscaler/internal/server"
	"robustscaler/internal/wal"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before closing their connections anyway.
const shutdownGrace = 15 * time.Second

func main() {
	var (
		listen         = flag.String("listen", ":8080", "HTTP listen address")
		pending        = flag.Float64("pending", 13, "default instance pending time τ seconds (per-workload override: PUT /config)")
		dt             = flag.Float64("dt", 60, "default modeling bin width seconds (per-workload override: PUT /config)")
		history        = flag.Float64("history", 28*86400, "default retained arrival history seconds (per-workload override: PUT /config)")
		mc             = flag.Int("mc", 1000, "default Monte Carlo samples for rt/cost plans (per-workload override: PUT /config)")
		mcWorkers      = flag.Int("mc-workers", 0, "worker pool for Monte Carlo draws per plan (0 = GOMAXPROCS); plans are identical for every value")
		seed           = flag.Int64("seed", 1, "random seed")
		maxIngest      = flag.Int64("max-ingest-bytes", server.DefaultMaxIngestBytes, "max arrivals body size in bytes, before and after decompression (413 beyond it; 0 disables)")
		retrainEvery   = flag.Float64("retrain-every", 1800, "background retrain sweep period seconds (0 disables); per-workload cadence via PUT /config retrain_every")
		retrainWorkers = flag.Int("retrain-workers", 4, "background retraining worker pool size (per node)")
		autoscaleEvery = flag.Float64("autoscale-every", 15, "background autoscale actuation sweep period seconds (0 disables); workloads opt in via PUT /config autoscale.enabled, each at its own autoscale.interval_seconds")
		actuator       = flag.String("actuator", "dryrun", "autoscale actuation backend: dryrun (record decisions, act on nothing) or sim (in-process simulated cluster)")
		dataDir        = flag.String("data-dir", "", "directory for workload snapshots; empty disables persistence")
		snapshotEvery  = flag.Float64("snapshot-every", 300, "background snapshot period seconds (0 disables; needs -data-dir)")
		snapshotRetain = flag.Int("snapshot-retain", 5, "committed snapshot generations kept for point-in-time restore (min 1)")
		restoreGen     = flag.Uint64("restore-generation", 0, "boot from this retained snapshot generation instead of the current one (0 = current; needs -data-dir; single-node only — per node via /v1/nodes/{node}/ in fleet mode)")
		walFsync       = flag.String("wal-fsync", "interval", "write-ahead log fsync policy: always (every append), interval (batched), off; per-workload override via PUT /config wal.fsync")
		walFsyncEvery  = flag.Float64("wal-fsync-interval", 0.1, "fsync cadence seconds for -wal-fsync=interval")
		walSegment     = flag.Int64("wal-segment-bytes", wal.DefaultSegmentBytes, "write-ahead log segment rotation size in bytes")
		staleThreshold = flag.Float64("staleness-threshold", 3600, "seconds a workload may carry unmodeled traffic before it counts into robustscaler_workloads_stale_over_threshold (0 disables)")
		fleetNodes     = flag.Int("fleet-nodes", 1, "shared-nothing nodes in this process behind the consistent-hash router (1 = classic single-node surface)")
		fleetVnodes    = flag.Int("fleet-vnodes", 0, "virtual nodes per member on the hash ring (0 = default; same value required across restarts)")
		fleetSeed      = flag.Uint64("fleet-seed", 0, "hash ring placement seed (same value required across restarts)")
	)
	flag.Parse()
	snapshotEverySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "snapshot-every" {
			snapshotEverySet = true
		}
	})

	// Flag validation, before any node boots.
	cfg := server.DefaultConfig()
	cfg.Pending = *pending
	cfg.Dt = *dt
	cfg.HistoryWindow = *history
	cfg.MCSamples = *mc
	cfg.MCWorkers = *mcWorkers
	cfg.Seed = *seed
	if *maxIngest < 0 {
		log.Fatalf("-max-ingest-bytes %d invalid (bytes; 0 disables)", *maxIngest)
	}
	if math.IsNaN(*retrainEvery) || *retrainEvery < 0 {
		log.Fatalf("-retrain-every %g invalid (seconds; 0 disables)", *retrainEvery)
	}
	var retrainPeriod time.Duration
	if *retrainEvery > 0 {
		// Validate the converted duration: a huge value overflows
		// float→Duration to a negative period, a sub-nanosecond one
		// truncates to zero.
		retrainPeriod = time.Duration(*retrainEvery * float64(time.Second))
		if retrainPeriod <= 0 || *retrainEvery > 365*86400 {
			log.Fatalf("-retrain-every %g out of range (ns..1 year, in seconds)", *retrainEvery)
		}
	}
	if math.IsNaN(*staleThreshold) || *staleThreshold < 0 {
		log.Fatalf("-staleness-threshold %g invalid (seconds; 0 disables)", *staleThreshold)
	}
	if math.IsNaN(*autoscaleEvery) || *autoscaleEvery < 0 {
		log.Fatalf("-autoscale-every %g invalid (seconds; 0 disables)", *autoscaleEvery)
	}
	var autoscalePeriod time.Duration
	if *autoscaleEvery > 0 {
		autoscalePeriod = time.Duration(*autoscaleEvery * float64(time.Second))
		if autoscalePeriod <= 0 || *autoscaleEvery > 365*86400 {
			log.Fatalf("-autoscale-every %g out of range (ns..1 year, in seconds)", *autoscaleEvery)
		}
	}
	switch *actuator {
	case "", "dryrun", "sim":
	default:
		log.Fatalf("-actuator %q invalid (want dryrun or sim)", *actuator)
	}
	if *fleetNodes < 1 {
		log.Fatalf("-fleet-nodes %d invalid (min 1)", *fleetNodes)
	}
	if *restoreGen != 0 && *fleetNodes > 1 {
		// Snapshot generations are per-node timelines; one number cannot
		// name a consistent fleet-wide state.
		log.Fatalf("-restore-generation is single-node only; in fleet mode restart with -fleet-nodes 1 per data dir, or POST /v1/nodes/{node}/v1/admin/restore-generation")
	}
	policy, err := wal.ParseSyncPolicy(*walFsync)
	if err != nil {
		log.Fatalf("-wal-fsync: %v", err)
	}
	if math.IsNaN(*walFsyncEvery) || *walFsyncEvery <= 0 || *walFsyncEvery > 3600 {
		log.Fatalf("-wal-fsync-interval %g invalid (seconds, 0..3600 exclusive low)", *walFsyncEvery)
	}
	if *walSegment < 1 {
		log.Fatalf("-wal-segment-bytes %d invalid (min 1)", *walSegment)
	}
	var snapshotPeriod time.Duration
	if *dataDir != "" {
		if *snapshotRetain < 1 {
			log.Fatalf("-snapshot-retain %d invalid (min 1: the current generation)", *snapshotRetain)
		}
		if math.IsNaN(*snapshotEvery) || *snapshotEvery < 0 {
			log.Fatalf("-snapshot-every %g invalid (seconds; 0 disables)", *snapshotEvery)
		}
		if *snapshotEvery > 0 {
			snapshotPeriod = time.Duration(*snapshotEvery * float64(time.Second))
			if snapshotPeriod <= 0 || *snapshotEvery > 365*86400 {
				log.Fatalf("-snapshot-every %g out of range (ns..1 year, in seconds)", *snapshotEvery)
			}
		}
	} else if snapshotEverySet && *snapshotEvery != 0 {
		// Asking for periodic snapshots without a place to put them is a
		// misconfiguration; explicitly disabling them (0) is not.
		log.Fatalf("-snapshot-every needs -data-dir")
	} else if *restoreGen != 0 {
		log.Fatalf("-restore-generation needs -data-dir")
	}

	opts := fleet.NodeOptions{
		Engine:             &cfg,
		MaxIngestBytes:     *maxIngest,
		SnapshotEvery:      snapshotPeriod,
		SnapshotRetain:     *snapshotRetain,
		RestoreGeneration:  *restoreGen,
		WALFsync:           policy,
		WALFsyncInterval:   time.Duration(*walFsyncEvery * float64(time.Second)),
		WALSegmentBytes:    *walSegment,
		StalenessThreshold: *staleThreshold,
		RetrainEvery:       retrainPeriod,
		RetrainWorkers:     *retrainWorkers,
		AutoscaleEvery:     autoscalePeriod,
		Actuator:           *actuator,
	}
	if *maxIngest == 0 {
		opts.MaxIngestBytes = -1 // scalerd's 0 means "no cap"
	}

	// Boot the nodes. A single node keeps the classic layout (snapshots
	// directly under -data-dir); a fleet shards it into <data-dir>/nK so
	// every node is shared-nothing on disk too.
	nodes := make([]*fleet.Node, *fleetNodes)
	for i := range nodes {
		nodeOpts := opts
		name := fmt.Sprintf("n%d", i)
		if *dataDir != "" {
			if *fleetNodes == 1 {
				nodeOpts.DataDir = *dataDir
			} else {
				nodeOpts.DataDir = filepath.Join(*dataDir, name)
			}
		}
		n, err := fleet.NewNode(name, nodeOpts)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
		boot := n.Boot()
		for _, q := range boot.Quarantined {
			log.Printf("node %s: quarantined workload %s (%s): %s", name, q.ID, q.File, q.Reason)
		}
		if boot.Restored > 0 {
			log.Printf("node %s: restored %d workloads from %s", name, boot.Restored, nodeOpts.DataDir)
		}
		if rep := boot.WALReplay; rep.Records > 0 || rep.Truncations > 0 || len(rep.Reset) > 0 {
			log.Printf("node %s: wal replay: %d workloads, %d records (%d events), %d truncated tails, %d logs reset",
				name, rep.Workloads, rep.Records, rep.Events, rep.Truncations, len(rep.Reset))
		}
	}
	if *restoreGen != 0 {
		log.Printf("rolled back to snapshot generation %d", *restoreGen)
	}
	if *dataDir != "" && snapshotPeriod > 0 {
		log.Printf("snapshotting to %s every %.0fs (incremental)", *dataDir, *snapshotEvery)
	}
	if retrainPeriod > 0 {
		log.Printf("background retraining every %.0fs with %d workers per node", *retrainEvery, *retrainWorkers)
	}
	if autoscalePeriod > 0 {
		log.Printf("autoscale actuation sweep every %.0fs per node (%s backend); workloads opt in via autoscale.enabled", *autoscaleEvery, *actuator)
	}

	// One node serves its handler directly — byte-for-byte the surface
	// scalerd has always had. A fleet serves the router.
	var handler http.Handler = nodes[0].Handler()
	if *fleetNodes > 1 {
		router, err := fleet.NewRouter(nodes, fleet.RouterOptions{
			VirtualNodes: *fleetVnodes,
			Seed:         *fleetSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, ra := range router.Reassignments() {
			if len(ra.DroppedFrom) > 0 {
				log.Printf("boot reconciliation: workload %s kept on %s, duplicate copies dropped from %v", ra.Workload, ra.Node, ra.DroppedFrom)
			} else {
				log.Printf("boot reconciliation: workload %s pinned to %s (off ring owner)", ra.Workload, ra.Node)
			}
		}
		handler = router.Handler()
		log.Printf("fleet mode: %d nodes behind the consistent-hash router", *fleetNodes)
	}
	log.Printf("scalerd listening on %s (τ=%.0fs, Δt=%.0fs); metrics on /metrics", *listen, *pending, *dt)

	srv := &http.Server{Addr: *listen, Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// Bind failure or an unexpected listener death: nothing to drain.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %v, shutting down", sig)
	}

	// Drain in-flight HTTP first so the final snapshots see their
	// effects, then close every node: each stops its background loops,
	// writes a final snapshot (persistence on) and flushes its WAL.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The final snapshots below may miss the killed requests'
			// effects; say so instead of reporting a clean drain.
			log.Printf("http drain incomplete after %v; remaining connections closed", shutdownGrace)
		} else {
			log.Printf("http shutdown: %v", err)
		}
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			log.Printf("node %s shutdown: %v", n.Name(), err)
		} else if n.DataDir() != "" {
			log.Printf("node %s: final snapshot written to %s", n.Name(), n.DataDir())
		}
	}
	log.Print("shutdown complete")
}
