// Command replay runs an autoscaling policy against a workload trace and
// prints the QoS/cost metrics.
//
// The trace is either one of the built-in synthetic stand-ins
// (-synthetic crs|google|alibaba) or a CSV file with columns
// arrival_s,service_s (-trace file.csv). RobustScaler policies train
// their NHPP model on the training portion before replaying the test
// portion.
//
// Policy syntax (-policy):
//
//	bp:N          Backup Pool with N instances
//	adapbp:C      Adaptive Backup Pool with factor C
//	hp:T          RobustScaler-HP targeting hit probability T
//	rt:W          RobustScaler-RT with net wait budget W seconds
//	cost:B        RobustScaler-cost with idle budget B seconds
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"robustscaler"
	"robustscaler/internal/trace"
)

func main() {
	var (
		synthetic = flag.String("synthetic", "crs", "built-in trace: crs, google, alibaba")
		traceFile = flag.String("trace", "", "CSV trace file (overrides -synthetic)")
		trainFrac = flag.Float64("train-frac", 0.75, "training fraction for CSV traces")
		policyArg = flag.String("policy", "hp:0.9", "policy spec, e.g. bp:3, adapbp:30, hp:0.9, rt:2, cost:5")
		pending   = flag.Float64("pending", 0, "instance pending time τ in seconds (0 = trace default)")
		tick      = flag.Float64("tick", 1, "planning interval Δ in seconds")
		dt        = flag.Float64("dt", 60, "modeling bin width Δt in seconds for the NHPP fit")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if math.IsNaN(*dt) || math.IsInf(*dt, 0) || *dt <= 0 {
		fatal(fmt.Errorf("-dt %g must be a positive finite number of seconds", *dt))
	}

	tr, err := loadTrace(*traceFile, *synthetic, *trainFrac, *seed)
	if err != nil {
		fatal(err)
	}
	tau := tr.MeanPending
	if *pending > 0 {
		tau = *pending
	}
	if tau <= 0 {
		tau = 13
	}
	policy, err := buildPolicy(*policyArg, tr, tau, *tick, *dt, *seed)
	if err != nil {
		fatal(err)
	}
	res, err := robustscaler.Replay(tr.Test(), policy, robustscaler.ReplayConfig{
		Start:       tr.TrainEnd,
		End:         tr.End,
		Pending:     robustscaler.FixedPending(tau),
		MeanPending: tau,
		Tick:        *tick,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace          %s (%d test queries)\n", tr.Name, res.NumQueries)
	fmt.Printf("policy         %s\n", *policyArg)
	fmt.Printf("hit_rate       %.4f\n", res.HitRate())
	fmt.Printf("rt_avg         %.2f s\n", res.RTAvg())
	fmt.Printf("rt_p95         %.2f s\n", res.RTQuantile(0.95))
	fmt.Printf("rt_p99         %.2f s\n", res.RTQuantile(0.99))
	fmt.Printf("total_cost     %.0f instance-seconds\n", res.TotalCost)
	fmt.Printf("relative_cost  %.3f (vs pure reactive)\n", res.RelativeCost())
	fmt.Printf("instances      %d\n", res.InstancesCreated)
}

func loadTrace(file, synthetic string, trainFrac float64, seed int64) (*trace.Trace, error) {
	if file != "" {
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		return trace.ReadCSV(fh, file, trainFrac)
	}
	switch synthetic {
	case "crs":
		return trace.SyntheticCRS(seed), nil
	case "google":
		return trace.SyntheticGoogle(seed), nil
	case "alibaba":
		return trace.SyntheticAlibaba(seed), nil
	default:
		return nil, fmt.Errorf("unknown synthetic trace %q", synthetic)
	}
}

func buildPolicy(spec string, tr *trace.Trace, tau, tick, dt float64, seed int64) (robustscaler.Policy, error) {
	kind, valStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("policy spec %q must be kind:value", spec)
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return nil, fmt.Errorf("policy value %q: %w", valStr, err)
	}
	switch kind {
	case "bp":
		return robustscaler.NewBackupPool(int(val)), nil
	case "adapbp":
		return robustscaler.NewAdaptiveBackupPool(val), nil
	case "hp", "rt", "cost":
		series := tr.TrainCountSeries(dt)
		cfg := robustscaler.DefaultTrainConfig()
		// AggregateWindow is in bins: keep the pooling interval at one
		// hour of wall time regardless of the chosen bin width (60 bins
		// at the default Δt=60s, more bins for finer grids).
		if w := int(math.Round(3600 / dt)); w > 1 {
			cfg.Periodicity.AggregateWindow = w
		} else {
			cfg.Periodicity.AggregateWindow = 1
		}
		cfg.Periodicity.MinPeriod = 3
		model, err := robustscaler.Train(series, cfg)
		if err != nil {
			return nil, err
		}
		if model.PeriodSeconds > 0 {
			fmt.Fprintf(os.Stderr, "detected period: %.0f s\n", model.PeriodSeconds)
		}
		p := robustscaler.FixedPending(tau)
		switch kind {
		case "hp":
			return robustscaler.NewHPPolicy(model, val, p, tick, seed)
		case "rt":
			return robustscaler.NewRTPolicy(model, val, p, tick, seed)
		default:
			return robustscaler.NewCostPolicy(model, val, p, tick, seed)
		}
	default:
		return nil, fmt.Errorf("unknown policy kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
