// Command experiments regenerates the paper's evaluation tables and
// figures on the synthetic trace stand-ins.
//
// Usage:
//
//	experiments -run all            # every experiment, paper-scale
//	experiments -run fig4 -quick    # one experiment, reduced scale
//	experiments -list               # show available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"robustscaler/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment ID to run, or 'all'")
		quick = flag.Bool("quick", false, "reduced sweeps/horizons for a fast pass")
		seed  = flag.Int64("seed", 2022, "base random seed")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	r := experiments.NewRunner(experiments.Options{Seed: *seed, Quick: *quick})
	if *list {
		fmt.Println(strings.Join(r.IDs(), "\n"))
		return
	}
	ids := r.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if err := r.RunAndPrint(id, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
