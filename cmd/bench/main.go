// Command bench measures the control plane's two hot paths — ingest
// and planning — end to end and records the result as JSON, so every
// change to these paths leaves a comparable perf trajectory in the
// repo.
//
// Four layers are measured:
//
//   - decode/*: the wire-format decoders alone (JSON array baseline vs
//     streaming NDJSON vs binary), including timestamp validation.
//   - ingest/*: full HTTP POST /v1/workloads/{id}/arrivals requests
//     against an in-process handler, per format and per gzip variant,
//     each iteration landing a fresh workload.
//   - ingest/engine/*: the engine-level batch append alone — without a
//     write-ahead log, with one left to the OS page cache, and with an
//     fsync per append — pricing what durability costs on the hot path.
//   - fit/* and refit/*: the training hot path — a cold ADMM fit of a
//     sliding window vs the same fit warm-started from the previous
//     window's solution, and a full background-sweep refit of a small
//     fleet through the concurrent retrain pool.
//   - plan/* and forecast/*: full HTTP GETs against a trained
//     workload, cold (distinct query each iteration) and hit (the same
//     query repeated, served from the engine's result/byte cache).
//
// Usage:
//
//	go run ./cmd/bench                  # full run, writes BENCH_hotpath.json
//	go run ./cmd/bench -quick           # small scales, for CI smoke
//	go run ./cmd/bench -quick -out /tmp/b.json -check BENCH_hotpath.json
//
// With -check, every benchmark present in both runs is compared by
// ns/op and the process exits non-zero if any regressed by more than
// -check-factor (default 2×) — the CI regression gate. Independent of
// -check, every run asserts the hard floors on the headline ratios
// (warm-start speedup ≥ 3×, forecast byte-cache hit speedup ≥ 20×):
// those compare the run against itself, so they hold on any machine.
package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"robustscaler"
	"robustscaler/internal/encode"
	"robustscaler/internal/engine"
	"robustscaler/internal/metrics"
	"robustscaler/internal/server"
	"robustscaler/internal/wal"
)

// result is one benchmark's record in the output file.
type result struct {
	Name         string  `json:"name"`
	N            int     `json:"n"`
	NsPerOp      float64 `json:"ns_per_op"`
	BPerOp       int64   `json:"b_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	ReqPerSec    float64 `json:"req_per_s"`
	EventsPerSec float64 `json:"events_per_s,omitempty"`
}

// report is the output file schema.
type report struct {
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick"`
	Results    []result           `json:"results"`
	Derived    map[string]float64 `json:"derived"`
	// Metrics snapshots the servers' /metrics and /stats counters after
	// the run, next to the harness's own tally of what it sent —
	// MetricsConsistent records that the two agreed, which is what makes
	// the BENCH numbers cross-checkable (and is asserted in CI).
	Metrics           map[string]float64 `json:"metrics"`
	MetricsConsistent bool               `json:"metrics_consistent"`
}

// tally is the harness's own count of the traffic it generated,
// accumulated inside the benchmark loops (testing.Benchmark runs each
// body through several warm-up rounds, so result.N alone undercounts).
type tally struct {
	// eventsPosted counts accepted arrival timestamps by wire format,
	// matching robustscaler_ingest_events_total.
	eventsPosted map[string]int64
	// ingestScraped sums robustscaler_ingest_events_total across the
	// per-scale ingest servers.
	ingestScraped map[string]float64
	// svcSeedEvents is what benchPlanForecast ingested into "svc".
	svcSeedEvents int64
	// plan/forecast calls against svc (HTTP and direct), and how many of
	// them were designed cache hits.
	planCalls, planHitCalls         int64
	forecastCalls, forecastHitCalls int64
	// svcStats is the final GET /v1/workloads/svc/stats document.
	svcStats map[string]float64
	// recommendation calls made against the auto workload, and the
	// scraped per-verdict decision counters plus failure count.
	recCalls    int64
	recScraped  float64
	recFailures float64
}

func newTally() *tally {
	return &tally{eventsPosted: map[string]int64{}, ingestScraped: map[string]float64{}}
}

func main() {
	var (
		quick       = flag.Bool("quick", false, "small scales only (CI smoke)")
		out         = flag.String("out", "BENCH_hotpath.json", "output JSON path")
		check       = flag.String("check", "", "baseline JSON to compare against; exit 1 on regression")
		checkFactor = flag.Float64("check-factor", 2.0, "regression factor tolerated by -check")
		ratiosOnly  = flag.Bool("check-ratios-only", false, "with -check, compare only the derived speedup ratios (machine-independent), not absolute ns/op")
	)
	flag.Parse()

	scales := []int{10_000, 100_000, 1_000_000}
	if *quick {
		scales = []int{10_000}
	}

	rep := &report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Derived:    map[string]float64{},
	}

	tl := newTally()
	for _, n := range scales {
		benchDecode(rep, n)
	}
	for _, n := range scales {
		benchIngest(rep, n, tl)
	}
	benchWALIngest(rep)
	benchFit(rep)
	benchPlanForecast(rep, tl)
	benchAutoscale(rep, tl)
	benchFleet(rep, *quick)

	deriveRatios(rep, scales)
	crossCheckMetrics(rep, tl)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(rep.Results))

	if err := checkFloors(rep); err != nil {
		log.Fatal(err)
	}
	if *check != "" {
		if err := checkRegressions(*check, rep, *checkFactor, *ratiosOnly); err != nil {
			log.Fatal(err)
		}
	}
}

// run executes one benchmark and records it.
func run(rep *report, name string, events int, fn func(b *testing.B)) {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	r := result{
		Name:        name,
		N:           res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BPerOp:      res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if r.NsPerOp > 0 {
		r.ReqPerSec = 1e9 / r.NsPerOp
		if events > 0 {
			r.EventsPerSec = float64(events) * 1e9 / r.NsPerOp
		}
	}
	rep.Results = append(rep.Results, r)
	fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %12d B/op %8d allocs/op %14.0f events/s\n",
		name, r.NsPerOp, r.BPerOp, r.AllocsPerOp, r.EventsPerSec)
}

// timestamps returns n sorted microsecond-resolution epochs, ~2k
// events/sec — a heavy workload's arrival stream.
func timestamps(n int) []float64 {
	vals := make([]float64, n)
	t := 1.7e9
	for i := range vals {
		t += 0.0004 + float64(i%97)*1e-6
		vals[i] = math.Round(t*1e6) / 1e6
	}
	return vals
}

func jsonBody(vals []float64) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"timestamps":[`)
	for i, v := range vals {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}

func ndjsonBody(vals []float64) []byte {
	var buf bytes.Buffer
	for _, v := range vals {
		buf.WriteString(strconv.FormatFloat(v, 'f', 6, 64))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func binaryBody(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func gzipBody(body []byte) []byte {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if _, err := zw.Write(body); err != nil {
		log.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// benchDecode measures the wire decoders alone, validation included —
// the stage where the streaming formats earn their keep.
func benchDecode(rep *report, n int) {
	vals := timestamps(n)
	jb, nb, bb := jsonBody(vals), ndjsonBody(vals), binaryBody(vals)

	run(rep, fmt.Sprintf("decode/json-array/n=%d", n), n, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var req struct {
				Timestamps []float64 `json:"timestamps"`
			}
			if err := json.NewDecoder(bytes.NewReader(jb)).Decode(&req); err != nil {
				die("json decode: %v", err)
			}
			if err := engine.ValidateTimestamps(req.Timestamps); err != nil {
				die("json validate: %v", err)
			}
			if len(req.Timestamps) != n {
				die("short json decode")
			}
		}
	})
	run(rep, fmt.Sprintf("decode/ndjson/n=%d", n), n, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch, err := encode.DecodeNDJSON(bytes.NewReader(nb), engine.ValidateTimestamps)
			if err != nil {
				die("ndjson decode: %v", err)
			}
			if batch.Count != n || !batch.Sorted {
				die("bad ndjson decode")
			}
			batch.Release()
		}
	})
	run(rep, fmt.Sprintf("decode/binary/n=%d", n), n, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch, err := encode.DecodeBinary(bytes.NewReader(bb), engine.ValidateTimestamps)
			if err != nil {
				die("binary decode: %v", err)
			}
			if batch.Count != n || !batch.Sorted {
				die("bad binary decode")
			}
			batch.Release()
		}
	})
}

// benchIngest measures full HTTP ingest requests per format. Every
// iteration lands in a fresh workload (removed right after), so each op
// is one complete cold batch: decode, validate, and the engine append.
// After the benches, this scale's /metrics page is scraped into the
// tally: the per-format ingest counters live in the server's registry
// (they survive the workload removals), so they must equal what the
// loops posted.
func benchIngest(rep *report, n int, tl *tally) {
	s, err := server.New(benchConfig())
	if err != nil {
		log.Fatal(err)
	}
	h := s.Handler()
	vals := timestamps(n)

	cases := []struct {
		name, format, contentType, contentEncoding string
		body                                       []byte
	}{
		{"json-array", "json", "application/json", "", jsonBody(vals)},
		{"ndjson", "ndjson", "application/x-ndjson", "", ndjsonBody(vals)},
		{"binary", "binary", "application/octet-stream", "", binaryBody(vals)},
		{"ndjson-gzip", "ndjson", "application/x-ndjson", "gzip", gzipBody(ndjsonBody(vals))},
		{"binary-gzip", "binary", "application/octet-stream", "gzip", gzipBody(binaryBody(vals))},
	}
	for _, tc := range cases {
		tc := tc
		run(rep, fmt.Sprintf("ingest/%s/n=%d", tc.name, n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/workloads/bench/arrivals", bytes.NewReader(tc.body))
				req.Header.Set("Content-Type", tc.contentType)
				if tc.contentEncoding != "" {
					req.Header.Set("Content-Encoding", tc.contentEncoding)
				}
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					die("ingest status %d: %s", w.Code, w.Body.String())
				}
				tl.eventsPosted[tc.format] += int64(n)
				s.Registry().Remove("bench")
			}
		})
	}
	for _, format := range []string{"json", "ndjson", "binary"} {
		v, ok := s.Metrics().Value("robustscaler_ingest_events_total",
			metrics.Label{Name: "format", Value: format})
		if !ok {
			die("ingest counter for format %q missing from the registry", format)
		}
		tl.ingestScraped[format] += v
	}
}

// benchWALIngest prices durability on the ingest hot path, at the
// engine layer so wire decoding doesn't dilute the number: the same
// sorted batch append with no WAL at all, with a WAL whose flushing is
// left to the OS page cache (fsync off), and with an fsync per append.
// The derived wal_ingest_retained_throughput_x ratio — wal-off ns/op
// over wal-fsync-off ns/op — is the fraction of raw ingest throughput
// the logged path retains, and rides the CI regression gate like the
// other derived ratios.
func benchWALIngest(rep *report) {
	const batch = 256
	variants := []struct {
		name    string
		policy  wal.SyncPolicy
		withWAL bool
	}{
		{"wal-off", 0, false},
		{"wal-fsync-off", wal.SyncOff, true},
		{"wal-fsync-always", wal.SyncAlways, true},
	}
	for _, v := range variants {
		cfg := benchConfig()
		// A bounded window keeps resident history (and trim cost) flat
		// while the timestamps below run past it.
		cfg.HistoryWindow = 600
		clock := 0.0
		cfg.Now = func() float64 { return clock }
		reg, err := engine.NewRegistry(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if v.withWAL {
			dir, err := os.MkdirTemp("", "bench-wal-")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			mgr, err := wal.Open(wal.Options{Dir: dir, Policy: v.policy})
			if err != nil {
				log.Fatal(err)
			}
			defer mgr.Close()
			if err := reg.AttachWAL(mgr, dir); err != nil {
				log.Fatal(err)
			}
		}
		e, err := reg.GetOrCreate("bench")
		if err != nil {
			log.Fatal(err)
		}
		ts := make([]float64, batch)
		run(rep, "ingest/engine/"+v.name, batch, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range ts {
					clock += 0.004
					ts[j] = clock
				}
				if _, err := e.Ingest(ts); err != nil {
					die("engine ingest (%s): %v", v.name, err)
				}
			}
		})
	}
}

// synthArrivals draws the benches' shared synthetic trace: a periodic
// ~0.2 qps workload over [0, end) — enough mass that a 600 s horizon
// plans a few dozen creations, the shape of a busy service.
func synthArrivals(end float64) []float64 {
	var arr []float64
	t := 0.0
	for t < end {
		rate := 0.2 + 0.15*math.Sin(2*math.Pi*t/3600)
		t += 1 / (rate + 0.05)
		arr = append(arr, math.Round(t*1e3)/1e3)
	}
	return arr
}

// fitCfg is the training config the fit benches share: a pinned
// one-hour period with detection off, so the cold and warm fits solve
// the identical objective and the warm path can never fall back cold.
func fitCfg() robustscaler.TrainConfig {
	cfg := robustscaler.DefaultTrainConfig()
	cfg.DetectPeriodicity = false
	cfg.Fit.Period = 60 // bins of fitDt: one hour, the trace's period
	return cfg
}

// fitDt is the modeling bin width the fit benches use.
const fitDt = 60.0

// benchFit measures the training hot path at the library level (no
// server, so the svc workload's cross-checked counters stay exact):
// a cold ADMM fit of a window against the same fit warm-started from
// the previous window's solution, and a whole-fleet refit sweep through
// the concurrent retrain pool, each sweep one bin of new data on every
// workload — scalerd's steady state.
func benchFit(rep *report) {
	cfg := fitCfg()
	// The warm source: a fit over the first six hours of the trace.
	s1 := robustscaler.CountsFromArrivals(synthArrivals(planNow), 0, planNow, fitDt)
	prev, err := robustscaler.Train(s1, cfg)
	if err != nil {
		die("fit bench: seeding fit: %v", err)
	}
	warm := prev.NHPP.WarmState()
	// The refit target: the same stream five minutes later.
	const slid = planNow + 300
	s2 := robustscaler.CountsFromArrivals(synthArrivals(slid), 0, slid, fitDt)

	run(rep, "fit/cold", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := robustscaler.Train(s2, cfg); err != nil {
				die("cold fit: %v", err)
			}
		}
	})
	run(rep, "fit/warm-start", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := robustscaler.TrainWarm(s2, cfg, warm)
			if err != nil {
				die("warm fit: %v", err)
			}
			if !m.FitStats.WarmStarted {
				die("warm fit fell back to a cold start")
			}
		}
	})

	const fleet, workers = 8, 4
	run(rep, fmt.Sprintf("refit/concurrency=%d", workers), 0, func(b *testing.B) {
		now := planNow
		ecfg := engine.DefaultConfig()
		ecfg.MCSamples = 1000
		ecfg.Seed = 1
		ecfg.Now = func() float64 { return now }
		ecfg.Train = cfg
		reg, err := engine.NewRegistry(ecfg)
		if err != nil {
			die("refit bench: %v", err)
		}
		arr := synthArrivals(planNow)
		for w := 0; w < fleet; w++ {
			e, err := reg.GetOrCreate(fmt.Sprintf("w%d", w))
			if err != nil {
				die("refit bench: %v", err)
			}
			if _, err := e.Ingest(arr); err != nil {
				die("refit bench: seeding ingest: %v", err)
			}
		}
		if refitted, failed := reg.RetrainAll(workers); refitted != fleet || failed != 0 {
			die("refit bench: initial sweep refitted %d, failed %d", refitted, failed)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += fitDt
			for w := 0; w < fleet; w++ {
				e, _ := reg.Get(fmt.Sprintf("w%d", w))
				if _, err := e.Ingest([]float64{now}); err != nil {
					die("refit bench: ingest: %v", err)
				}
			}
			if refitted, failed := reg.RetrainAll(workers); refitted != fleet || failed != 0 {
				die("refit bench: sweep refitted %d, failed %d", refitted, failed)
			}
		}
	})
}

// benchConfig pins the engine knobs so runs stay comparable across
// machines and releases.
func benchConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.MCSamples = 1000
	cfg.Seed = 1
	cfg.Now = func() float64 { return planNow }
	return cfg
}

// planNow anchors the plan/forecast benches (6h into the synthetic
// trace, so the model has history behind it and period ahead of it).
const planNow = 6 * 3600.0

// benchPlanForecast measures planning: cold (every iteration a distinct
// query) against hit (the same query repeated, served from the result
// cache), over HTTP and — for the purest cache number — directly on the
// engine. Every plan/forecast issued is tallied so the workload's
// /stats cache counters can be cross-checked afterwards.
func benchPlanForecast(rep *report, tl *tally) {
	s, err := server.New(benchConfig())
	if err != nil {
		log.Fatal(err)
	}
	h := s.Handler()

	arr := synthArrivals(planNow)
	e, err := s.Registry().GetOrCreate("svc")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := e.Ingest(arr); err != nil {
		log.Fatal(err)
	}
	tl.svcSeedEvents = int64(len(arr))
	if _, err := e.Train(); err != nil {
		log.Fatal(err)
	}
	// The rt target rides the per-workload config plane (PUT /config)
	// instead of a ?target= on every request — the same parameters, so
	// the numbers stay comparable, but the workload-scoped configuration
	// path is exercised end to end by the plan benches below.
	creq := httptest.NewRequest(http.MethodPut, "/v1/workloads/svc/config",
		bytes.NewReader([]byte(`{"rt_target": 5}`)))
	crec := httptest.NewRecorder()
	h.ServeHTTP(crec, creq)
	if crec.Code != http.StatusOK {
		die("PUT config: %d %s", crec.Code, crec.Body.String())
	}

	get := func(b *testing.B, url string) {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			die("GET %s: %d %s", url, w.Code, w.Body.String())
		}
	}
	planGet := func(b *testing.B, url string, hit bool) {
		get(b, url)
		tl.planCalls++
		if hit {
			tl.planHitCalls++
		}
	}
	forecastGet := func(b *testing.B, url string, hit bool) {
		get(b, url)
		tl.forecastCalls++
		if hit {
			tl.forecastHitCalls++
		}
	}

	for _, variant := range []string{"hp", "rt"} {
		variant := variant
		// hp passes an explicit target; rt relies on the workload's
		// configured rt_target default (set via PUT /config above).
		target := "&target=0.9"
		if variant == "rt" {
			target = ""
		}
		urlAt := func(now float64) string {
			// 'f' formatting: %g would switch to exponent notation past
			// 1e6, whose '+' decodes to a space inside a query string.
			return fmt.Sprintf("/v1/workloads/svc/plan?variant=%s%s&horizon=600&now=%s",
				variant, target, strconv.FormatFloat(now, 'f', -1, 64))
		}
		run(rep, "plan/"+variant+"/cold", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// An unbounded distinct anchor each iteration: always a
				// cache miss, always a full horizon recomputation. (A
				// bounded cycle would start hitting the cache as soon as
				// b.N outgrew it.)
				planGet(b, urlAt(planNow+float64(i)*15), false)
			}
		})
		run(rep, "plan/"+variant+"/hit", 0, func(b *testing.B) {
			planGet(b, urlAt(planNow), false) // prime
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				planGet(b, urlAt(planNow), true)
			}
		})
	}

	// Engine-level cache hit: the pure O(1) lookup, no HTTP or JSON.
	// (The prime shares its key with the rt/hit HTTP bench above, so it
	// counts as a designed hit too.)
	req := engine.PlanRequest{Variant: "rt", Target: 5, Horizon: 600, Now: planNow, HasNow: true}
	if _, err := e.Plan(req); err != nil {
		log.Fatal(err)
	}
	tl.planCalls++
	tl.planHitCalls++
	run(rep, "plan/rt/engine-hit", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Plan(req); err != nil {
				die("engine plan: %v", err)
			}
			tl.planCalls++
			tl.planHitCalls++
		}
	})

	// A day-long horizon (1440 points): the shape of a dashboard's
	// forecast panel, and large enough that the cold render dwarfs the
	// byte-cache hit's single write.
	fcURL := func(from float64) string {
		return fmt.Sprintf("/v1/workloads/svc/forecast?from=%s&to=%s&step=60",
			strconv.FormatFloat(from, 'f', -1, 64), strconv.FormatFloat(from+86400, 'f', -1, 64))
	}
	run(rep, "forecast/cold", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			forecastGet(b, fcURL(planNow+float64(i)*60), false) // unbounded: never a hit
		}
	})
	run(rep, "forecast/hit", 0, func(b *testing.B) {
		forecastGet(b, fcURL(planNow), false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			forecastGet(b, fcURL(planNow), true)
		}
	})

	// The run is over: read back the workload's /stats document, the
	// ground truth crossCheckMetrics compares the tally against.
	req2 := httptest.NewRequest(http.MethodGet, "/v1/workloads/svc/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req2)
	if w.Code != http.StatusOK {
		die("GET /v1/workloads/svc/stats: %d %s", w.Code, w.Body.String())
	}
	var stats map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		die("decoding svc stats: %v", err)
	}
	tl.svcStats = map[string]float64{}
	for k, v := range stats {
		if f, ok := v.(float64); ok {
			tl.svcStats[k] = f
		}
	}
}

// benchAutoscale measures one full pipeline decision — Collect the
// replica state, Analyze Λ over the lead off the trained model,
// Optimize through the HPA-style behaviors — served as GET
// /v1/workloads/{id}/recommendation. Every call is tallied so the
// robustscaler_autoscale_* counters can be cross-checked afterwards:
// the per-verdict recommendation counters must sum to exactly the
// calls made, with zero pipeline failures.
func benchAutoscale(rep *report, tl *tally) {
	s, err := server.New(benchConfig())
	if err != nil {
		log.Fatal(err)
	}
	h := s.Handler()
	e, err := s.Registry().GetOrCreate("auto")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := e.Ingest(synthArrivals(planNow)); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		log.Fatal(err)
	}
	// The behaviors ride the per-workload config plane, exercising the
	// autoscale sub-config merge end to end.
	creq := httptest.NewRequest(http.MethodPut, "/v1/workloads/auto/config",
		bytes.NewReader([]byte(`{"autoscale": {"min_replicas": 1, "max_replicas": 100, "scale_down_stabilization_seconds": 300}}`)))
	crec := httptest.NewRecorder()
	h.ServeHTTP(crec, creq)
	if crec.Code != http.StatusOK {
		die("PUT autoscale config: %d %s", crec.Code, crec.Body.String())
	}

	run(rep, "recommendation/decide", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodGet, "/v1/workloads/auto/recommendation", nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				die("GET recommendation: %d %s", w.Code, w.Body.String())
			}
			tl.recCalls++
		}
	})

	for _, verdict := range []string{"up", "down", "hold", "clamped"} {
		v, ok := s.Metrics().Value("robustscaler_autoscale_recommendations_total",
			metrics.Label{Name: "verdict", Value: verdict})
		if !ok {
			die("autoscale recommendation counter for verdict %q missing from the registry", verdict)
		}
		tl.recScraped += v
	}
	if v, ok := s.Metrics().Value("robustscaler_autoscale_failures_total"); ok {
		tl.recFailures = v
	}
}

// crossCheckMetrics asserts the servers' counters agree with the
// harness's own tally — a wrong count in either direction means the
// observability plane (or the bench) is lying, so the run aborts. The
// scraped values and the tally both land in the report, making every
// committed BENCH file self-describing.
func crossCheckMetrics(rep *report, tl *tally) {
	rep.Metrics = map[string]float64{}
	var bad []string
	for _, format := range []string{"json", "ndjson", "binary"} {
		posted := float64(tl.eventsPosted[format])
		scraped := tl.ingestScraped[format]
		rep.Metrics["ingest_events_posted/"+format] = posted
		rep.Metrics["robustscaler_ingest_events_total/"+format] = scraped
		if posted != scraped {
			bad = append(bad, fmt.Sprintf("ingest %s: posted %.0f events, /metrics says %.0f", format, posted, scraped))
		}
	}
	hits, misses := tl.svcStats["plan_cache_hits_total"], tl.svcStats["plan_cache_misses_total"]
	rep.Metrics["plan_calls_made"] = float64(tl.planCalls)
	rep.Metrics["plan_cache_hits_total"] = hits
	rep.Metrics["plan_cache_misses_total"] = misses
	if hits+misses != float64(tl.planCalls) {
		bad = append(bad, fmt.Sprintf("plan: %0.f calls made, stats count %.0f hits + %.0f misses", float64(tl.planCalls), hits, misses))
	}
	if hits < float64(tl.planHitCalls) {
		bad = append(bad, fmt.Sprintf("plan: %d designed cache hits, stats count only %.0f", tl.planHitCalls, hits))
	}
	fhits, fmisses := tl.svcStats["forecast_cache_hits_total"], tl.svcStats["forecast_cache_misses_total"]
	rep.Metrics["forecast_calls_made"] = float64(tl.forecastCalls)
	rep.Metrics["forecast_cache_hits_total"] = fhits
	rep.Metrics["forecast_cache_misses_total"] = fmisses
	if fhits+fmisses != float64(tl.forecastCalls) {
		bad = append(bad, fmt.Sprintf("forecast: %d calls made, stats count %.0f hits + %.0f misses", tl.forecastCalls, fhits, fmisses))
	}
	if fhits < float64(tl.forecastHitCalls) {
		bad = append(bad, fmt.Sprintf("forecast: %d designed cache hits, stats count only %.0f", tl.forecastHitCalls, fhits))
	}
	rep.Metrics["svc_events_seeded"] = float64(tl.svcSeedEvents)
	rep.Metrics["svc_ingested_events_total"] = tl.svcStats["ingested_events_total"]
	if tl.svcStats["ingested_events_total"] != float64(tl.svcSeedEvents) {
		bad = append(bad, fmt.Sprintf("svc: seeded %d events, stats count %.0f", tl.svcSeedEvents, tl.svcStats["ingested_events_total"]))
	}
	rep.Metrics["recommendation_calls_made"] = float64(tl.recCalls)
	rep.Metrics["robustscaler_autoscale_recommendations_total"] = tl.recScraped
	rep.Metrics["robustscaler_autoscale_failures_total"] = tl.recFailures
	if tl.recScraped != float64(tl.recCalls) {
		bad = append(bad, fmt.Sprintf("recommendation: %d calls made, verdict counters sum to %.0f", tl.recCalls, tl.recScraped))
	}
	if tl.recFailures != 0 {
		bad = append(bad, fmt.Sprintf("recommendation: %.0f pipeline failures recorded against a trained workload", tl.recFailures))
	}
	if len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "METRICS MISMATCH "+m)
		}
		log.Fatalf("%d metrics cross-check(s) failed: bench traffic and /metrics//stats counters disagree", len(bad))
	}
	rep.MetricsConsistent = true
	fmt.Fprintf(os.Stderr, "metrics cross-check ok (%d ingest formats, %d plan calls, %d forecast calls)\n",
		3, tl.planCalls, tl.forecastCalls)
}

// deriveRatios records the headline comparisons: streaming-format
// speedups and allocation savings over the JSON baseline (at every
// scale measured, so quick runs and full baselines share keys), and
// the cache-hit speedup over the cold plan path.
func deriveRatios(rep *report, scales []int) {
	lookup := func(name string) *result {
		for i := range rep.Results {
			if rep.Results[i].Name == name {
				return &rep.Results[i]
			}
		}
		return nil
	}
	ratio := func(dst, numName, denName string, field func(*result) float64) {
		num, den := lookup(numName), lookup(denName)
		if num == nil || den == nil || field(num) == 0 {
			return
		}
		rep.Derived[dst] = round2(field(den) / field(num))
	}
	ns := func(r *result) float64 { return r.NsPerOp }
	bb := func(r *result) float64 { return float64(r.BPerOp) }
	allocs := func(r *result) float64 { return float64(r.AllocsPerOp) }

	for _, n := range scales {
		sfx := fmt.Sprintf("/n=%d", n)
		for _, f := range []string{"ndjson", "binary"} {
			ratio("ingest_"+f+"_throughput_x"+sfx, "ingest/"+f+sfx, "ingest/json-array"+sfx, ns)
			ratio("ingest_"+f+"_alloc_bytes_saved_x"+sfx, "ingest/"+f+sfx, "ingest/json-array"+sfx, bb)
			ratio("decode_"+f+"_throughput_x"+sfx, "decode/"+f+sfx, "decode/json-array"+sfx, ns)
			ratio("decode_"+f+"_alloc_bytes_saved_x"+sfx, "decode/"+f+sfx, "decode/json-array"+sfx, bb)
			ratio("decode_"+f+"_allocs_saved_x"+sfx, "decode/"+f+sfx, "decode/json-array"+sfx, allocs)
		}
	}
	for _, v := range []string{"hp", "rt"} {
		ratio("plan_"+v+"_cache_hit_speedup_x", "plan/"+v+"/hit", "plan/"+v+"/cold", ns)
	}
	ratio("plan_rt_engine_cache_hit_speedup_x", "plan/rt/engine-hit", "plan/rt/cold", ns)
	ratio("forecast_cache_hit_speedup_x", "forecast/hit", "forecast/cold", ns)
	ratio("warm_start_speedup_x", "fit/warm-start", "fit/cold", ns)
	// Durability cost, as the retained-throughput fraction of the
	// unlogged append (≤ 1 by construction; a drop means the WAL path
	// got slower). Only the fsync-off variant is derived — it measures
	// the logging code itself (framing, CRC, the write syscall), which
	// tracks CPU speed like every other ratio here. An fsync-always
	// ratio would gate on raw fsync latency, which varies by orders of
	// magnitude across runners; its absolute ns/op stays in results.
	ratio("wal_ingest_retained_throughput_x", "ingest/engine/wal-fsync-off", "ingest/engine/wal-off", ns)
	// Routing cost: the fraction of direct single-node ingest throughput
	// retained behind the router (≤ 1; bigger is better, like every
	// derived ratio).
	ratio("router_retained_throughput_x", "fleet/ingest/routed", "fleet/ingest/direct", ns)
	// Shard scaling: durable fsync-always ingest at N nodes over N=1.
	// Same batch size per post on both sides, so the ns/op ratio is the
	// events/s multiple.
	ratio("fleet_ingest_scaling_x_n2", "fleet/ingest/scale/n=2", "fleet/ingest/scale/n=1", ns)
	ratio("fleet_ingest_scaling_x_n4", "fleet/ingest/scale/n=4", "fleet/ingest/scale/n=1", ns)
}

// hardFloors are the tentpole guarantees on the headline ratios. Unlike
// the -check regression gate they need no baseline: each ratio compares
// the run against itself, so the floor holds on any machine, and every
// run (including CI smoke) asserts them.
var hardFloors = map[string]float64{
	"warm_start_speedup_x":         3,
	"forecast_cache_hit_speedup_x": 20,
	"router_retained_throughput_x": 0.5,
	// Fleet scaling floors are deliberately loose sanity checks —
	// sharding must never LOSE throughput — because the multiples ride
	// on raw concurrent-fsync behavior, which swings wildly on shared
	// runner disks (see cmd/bench/fleet.go). The committed baselines in
	// BENCH_hotpath.json carry the tighter, container-measured gates,
	// checked by jq in CI.
	"fleet_ingest_scaling_x_n2": 1.05,
	"fleet_ingest_scaling_x_n4": 1.15,
}

// checkFloors asserts the hard floors against this run's derived ratios.
func checkFloors(rep *report) error {
	var bad []string
	for name, floor := range hardFloors {
		v, ok := rep.Derived[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from the run", name))
			continue
		}
		if v < floor {
			bad = append(bad, fmt.Sprintf("%s: %.2f, floor %g", name, v, floor))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "FLOOR MISSED "+m)
		}
		return fmt.Errorf("%d hard floor(s) missed", len(bad))
	}
	fmt.Fprintf(os.Stderr, "hard floors ok (%d ratios)\n", len(hardFloors))
	return nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// die aborts the harness with a message. testing.Benchmark's B has no
// runner behind it — b.Fatalf would nil-panic inside the testing
// package before printing anything — so benchmark bodies report fatal
// conditions here instead.
func die(format string, args ...any) {
	log.Fatalf(format, args...)
}

// checkRegressions compares this run against a baseline report and
// fails on regressions beyond factor, two ways: per-benchmark ns/op
// (sensitive, but assumes comparable hardware), and the derived
// speedup ratios (streaming-vs-JSON, hit-vs-cold), which compare the
// run against itself and therefore hold on any machine — a collapsed
// ratio is a real hot-path regression even when the runner is simply
// faster or slower than the baseline box. ratiosOnly skips the
// absolute ns/op comparison; CI uses it because shared runners are not
// the machine the committed baseline was recorded on. Entries only
// present on one side are ignored, so a quick run can be gated against
// a full-run baseline.
func checkRegressions(path string, rep *report, factor float64, ratiosOnly bool) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := map[string]result{}
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var regressions []string
	compared := 0
	if !ratiosOnly {
		for _, r := range rep.Results {
			b, ok := baseline[r.Name]
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			compared++
			if r.NsPerOp > factor*b.NsPerOp {
				regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.1fx)",
					r.Name, r.NsPerOp, b.NsPerOp, r.NsPerOp/b.NsPerOp))
			}
		}
	}
	for name, v := range rep.Derived {
		bv, ok := base.Derived[name]
		if !ok || bv <= 0 || v <= 0 {
			continue
		}
		compared++
		if v < bv/factor { // all derived values are bigger-is-better ratios
			regressions = append(regressions, fmt.Sprintf("%s: ratio %.2f vs baseline %.2f", name, v, bv))
		}
	}
	sort.Strings(regressions)
	fmt.Fprintf(os.Stderr, "checked %d benchmarks against %s (tolerance %.1fx)\n", compared, path, factor)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION "+r)
		}
		return fmt.Errorf("%d benchmark(s) regressed more than %.1fx", len(regressions), factor)
	}
	fmt.Fprintln(os.Stderr, "no regressions")
	return nil
}
