package main

// Fleet benchmarks: what the routing layer costs, and what sharding
// buys.
//
// Router overhead: the same 256-event binary ingest against one node's
// handler directly and through a 1-node router (ring lookup, gate
// RLock, forward counter). The derived router_retained_throughput_x —
// direct ns/op over routed ns/op, ≤ 1 by construction — is the
// fraction of single-node throughput the routing layer retains, and
// carries a hard floor: the router may never cost half the hot path.
//
// Ingest scaling: N nodes (N = 1, 2, 4), each with its own fsync-always
// write-ahead log in its own temp data dir, one closed-loop client per
// node streaming batches through the router to the workloads that node
// owns. Durable ingest is fsync-bound, and each node added brings its
// own durability pipeline: concurrent fsyncs on distinct nodes' logs
// group-commit in the journal, so aggregate events/s scales with N
// even on one core. fleet_ingest_scaling_x_n2/_n4 record the measured
// multiples; CI gates the committed baselines as regression floors.
//
// Ceiling on this container (measured, not assumed): the bench box has
// one core and one virtio disk, so every node's commit ultimately
// funnels into a single journal/flush path — raw concurrent
// write+fsync on independent files tops out near 2.2x at 4 writers
// here, with large run-to-run variance from the shared host device.
// That, not the router, bounds the N=4 multiple below the ~N expected
// of a real multi-machine fleet; adding per-post CPU (e.g. a plan read
// per batch) makes it strictly worse, because group commit completes
// all nodes' fsyncs together and their CPU then serializes on the one
// core. Every run also re-counts the acknowledged events through the
// router's merged /metrics exposition, so the fleet numbers stay
// cross-checkable like the single-node ones.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"robustscaler/internal/fleet"
	"robustscaler/internal/wal"
)

const fleetBatch = 256

// benchFleet runs both fleet sections. The scaling measurement takes
// the best of three interleaved trials per fleet size: on a shared
// host device, neighbor noise only ever subtracts throughput, so the
// per-size maximum is the statistic that tracks the machine's actual
// capability instead of whichever trial drew the slow window —
// interleaving keeps one bad minute from biasing one fleet size.
func benchFleet(rep *report, quick bool) {
	benchFleetRouter(rep)
	postsPerClient := 600
	if quick {
		postsPerClient = 150
	}
	const trials = 3
	sizes := []int{1, 2, 4}
	best := map[int]result{}
	for t := 0; t < trials; t++ {
		for _, n := range sizes {
			r := runFleetScaling(n, postsPerClient)
			fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %12s %8s %14.0f events/s (trial %d)\n",
				r.Name, r.NsPerOp, "-", "-", r.EventsPerSec, t+1)
			if r.EventsPerSec > best[n].EventsPerSec {
				best[n] = r
			}
		}
	}
	for _, n := range sizes {
		r := best[n]
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %12s %8s %14.0f events/s (best of %d)\n",
			r.Name, r.NsPerOp, "-", "-", r.EventsPerSec, trials)
	}
}

// fleetIngestCfg keeps resident history (and trim cost) flat while the
// timestamps below run past it, like the WAL ingest bench.
func fleetIngestCfg() fleet.NodeOptions {
	cfg := benchConfig()
	cfg.HistoryWindow = 600
	return fleet.NodeOptions{Engine: &cfg}
}

// postBinary sends one binary arrivals batch through h and dies on
// anything but a 200.
func postBinary(h http.Handler, id string, body []byte) {
	req := httptest.NewRequest(http.MethodPost, "/v1/workloads/"+id+"/arrivals", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/octet-stream")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		die("fleet ingest status %d: %s", w.Code, w.Body.String())
	}
}

// benchFleetRouter prices the routing layer itself: no WAL, one node,
// identical traffic with and without the router in front.
func benchFleetRouter(rep *report) {
	node, err := fleet.NewNode("n0", fleetIngestCfg())
	if err != nil {
		die("fleet bench node: %v", err)
	}
	defer node.Close()
	router, err := fleet.NewRouter([]*fleet.Node{node}, fleet.RouterOptions{})
	if err != nil {
		die("fleet bench router: %v", err)
	}

	clock := 0.0
	nextBody := func() []byte {
		ts := make([]float64, fleetBatch)
		for j := range ts {
			clock += 0.004
			ts[j] = clock
		}
		return binaryBody(ts)
	}
	for _, v := range []struct {
		name string
		h    http.Handler
	}{
		{"direct", node.Handler()},
		{"routed", router.Handler()},
	} {
		run(rep, "fleet/ingest/"+v.name, fleetBatch, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				body := nextBody() // timestamp generation priced out of both variants
				b.StartTimer()
				postBinary(v.h, "bench", body)
			}
		})
	}
}

// runFleetScaling measures durable ingest throughput behind the
// router at fleet size n: every node logs with fsync-always in its own
// temp dir, and one closed-loop client per node drives the workloads
// that node owns. Recorded events/s (and its n=1-relative multiple) is
// the headline.
func runFleetScaling(n, postsPerClient int) result {
	const workloads = 16
	nodes := make([]*fleet.Node, n)
	for i := range nodes {
		dir, err := os.MkdirTemp("", "bench-fleet-")
		if err != nil {
			die("fleet scaling: %v", err)
		}
		defer os.RemoveAll(dir)
		opts := fleetIngestCfg()
		opts.DataDir = dir
		opts.WALFsync = wal.SyncAlways
		node, err := fleet.NewNode(fmt.Sprintf("n%d", i), opts)
		if err != nil {
			die("fleet scaling node: %v", err)
		}
		defer node.Close()
		nodes[i] = node
	}
	router, err := fleet.NewRouter(nodes, fleet.RouterOptions{})
	if err != nil {
		die("fleet scaling router: %v", err)
	}
	h := router.Handler()

	// Partition the workload ids by ring ownership; every node must own
	// at least one or its client (and its WAL) would sit idle.
	owned := make(map[string][]string, n)
	for i := 0; i < workloads; i++ {
		id := fmt.Sprintf("svc-%02d", i)
		owner := router.Owner(id)
		owned[owner] = append(owned[owner], id)
	}
	for _, node := range nodes {
		if len(owned[node.Name()]) == 0 {
			die("fleet scaling: node %s owns none of the %d bench workloads; rebalance the id set", node.Name(), workloads)
		}
	}

	// Pre-build each client's batches: disjoint, per-workload-increasing
	// timestamps, so the loop below prices only the ingest path.
	type post struct {
		id   string
		body []byte
	}
	plans := make([][]post, n)
	for i, node := range nodes {
		ids := owned[node.Name()]
		clock := 0.0
		plans[i] = make([]post, postsPerClient)
		for p := 0; p < postsPerClient; p++ {
			ts := make([]float64, fleetBatch)
			for j := range ts {
				clock += 0.004
				ts[j] = clock
			}
			plans[i][p] = post{id: ids[p%len(ids)], body: binaryBody(ts)}
		}
	}

	// One closed-loop client per node: the next durable ack gates the
	// next post, so throughput is exactly the fsync pipeline's depth —
	// which is what sharding multiplies.
	var wg sync.WaitGroup
	start := time.Now()
	for i := range plans {
		wg.Add(1)
		go func(plan []post) {
			defer wg.Done()
			for _, p := range plan {
				postBinary(h, p.id, p.body)
			}
		}(plans[i])
	}
	wg.Wait()
	wall := time.Since(start)

	totalPosts := n * postsPerClient
	totalEvents := totalPosts * fleetBatch
	nsPerOp := float64(wall.Nanoseconds()) / float64(totalPosts)
	r := result{
		Name:         fmt.Sprintf("fleet/ingest/scale/n=%d", n),
		N:            totalPosts,
		NsPerOp:      nsPerOp,
		ReqPerSec:    1e9 / nsPerOp,
		EventsPerSec: float64(totalEvents) * 1e9 / float64(wall.Nanoseconds()),
	}
	// Cross-check through the router's merged exposition: the per-node
	// binary ingest counters, summed fleet-wide, must equal what the
	// clients posted — which exercises the metrics merge end to end.
	if got := scrapeFleetIngest(h, n); got != float64(totalEvents) {
		die("fleet scaling n=%d: router /metrics counts %.0f binary events, harness posted %d", n, got, totalEvents)
	}
	return r
}

// scrapeFleetIngest sums robustscaler_ingest_events_total for the
// binary format across every node label in the router's merged
// /metrics document.
func scrapeFleetIngest(h http.Handler, n int) float64 {
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		die("fleet /metrics: status %d", w.Code)
	}
	sum := 0.0
	seen := 0
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if !strings.HasPrefix(line, "robustscaler_ingest_events_total{") {
			continue
		}
		if !strings.Contains(line, `format="binary"`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			die("fleet /metrics: unparsable sample %q", line)
		}
		sum += v
		seen++
	}
	if seen != n {
		die("fleet /metrics: %d binary ingest series, want one per node (%d)", seen, n)
	}
	return sum
}
