// Command closedloop runs the corpus traces through the full autoscaler
// pipeline — Collect → Analyze → Optimize → Actuate replayed inside the
// simulator (internal/scenario's closed-loop harness over
// pipeline.SimPolicy) — and writes the scorecard as JSON. The committed
// CLOSEDLOOP.json is the full run; CI runs the quick variant (truncated
// test spans, same envelopes) and gates on the envelope verdict, the
// same pattern as SCENARIOS.json and BENCH_hotpath.json.
//
// Usage:
//
//	go run ./cmd/closedloop                    # full corpus, writes CLOSEDLOOP.json
//	go run ./cmd/closedloop -quick -out /tmp/c.json
//	go run ./cmd/closedloop -quick -check CLOSEDLOOP.json
//
// The process exits non-zero when any scenario misses its envelope.
// With -check, the run is additionally compared against a committed
// scorecard: the committed file must itself pass its envelopes and
// cover the same scenario set with the same bounds, so a stale or
// hand-edited CLOSEDLOOP.json fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"robustscaler/internal/scenario"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "truncate replayed test spans (CI smoke); envelopes still apply")
		out   = flag.String("out", "CLOSEDLOOP.json", "output JSON path")
		seed  = flag.Int64("seed", 1, "base seed for generators, engine and simulator")
		check = flag.String("check", "", "committed scorecard to cross-check (scenario set + envelope verdict)")
	)
	flag.Parse()

	rep, err := scenario.RunClosedLoopCorpus(scenario.ClosedLoopCorpus(), *seed, *quick)
	if err != nil {
		log.Fatal(err)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}

	bad := 0
	for _, s := range rep.Scenarios {
		verdict := "ok"
		if !s.OK {
			verdict = "ENVELOPE MISSED"
			bad++
		}
		fmt.Fprintf(os.Stderr, "%-16s %6d test queries  hit=%.3f relcost=%.3f guarded: hit=%.3f churn=%d/%d  %s\n",
			s.Name, s.TestQueries, s.Pipeline.HitRate, s.Pipeline.RelativeCost,
			s.Guarded.HitRate, s.Guarded.InstancesCreated, s.Pipeline.InstancesCreated, verdict)
		for _, c := range s.Checks {
			if !c.OK {
				fmt.Fprintf(os.Stderr, "  MISSED %s: %g vs bound %g\n", c.Name, c.Value, c.Bound)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))

	if *check != "" {
		if err := crossCheck(*check, rep); err != nil {
			log.Fatal(err)
		}
	}
	if bad > 0 {
		log.Fatalf("%d scenario(s) missed their envelope", bad)
	}
}

// crossCheck validates a committed scorecard against this run: it must
// pass its own envelopes and describe the same scenarios with the same
// envelope bounds, so the committed file can't silently drift from the
// corpus in code.
func crossCheck(path string, cur *scenario.ClosedLoopReport) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading committed scorecard: %w", err)
	}
	var base scenario.ClosedLoopReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if !base.EnvelopesOK {
		return fmt.Errorf("%s records envelopes_ok=false; re-run the full corpus and commit", path)
	}
	baseEnv := map[string]scenario.ClosedLoopEnvelope{}
	for _, s := range base.Scenarios {
		baseEnv[s.Name] = s.Envelope
	}
	if len(baseEnv) != len(cur.Scenarios) {
		return fmt.Errorf("%s has %d scenarios, corpus has %d; regenerate it", path, len(baseEnv), len(cur.Scenarios))
	}
	for _, s := range cur.Scenarios {
		env, ok := baseEnv[s.Name]
		if !ok {
			return fmt.Errorf("scenario %q missing from %s; regenerate it", s.Name, path)
		}
		if env != s.Envelope {
			return fmt.Errorf("scenario %q envelope drifted from %s; regenerate it", s.Name, path)
		}
	}
	fmt.Fprintf(os.Stderr, "cross-check ok against %s (%d scenarios)\n", path, len(baseEnv))
	return nil
}
