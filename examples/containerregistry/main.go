// Container-registry scenario: the paper's motivating CRS workload —
// low-rate, noisy, weekly-periodic image-build queries where each query gets
// a dedicated build pod with a ~30 s cold start. The example trains on
// three weeks of traffic and compares all three RobustScaler variants
// against the Backup Pool heuristics on the held-out week.
//
//	go run ./examples/containerregistry
package main

import (
	"fmt"
	"log"

	"robustscaler"
	"robustscaler/internal/trace"
)

func main() {
	tr := trace.SyntheticCRS(7)
	fmt.Printf("CRS stand-in: %d queries over %.0f days (mean %.4f qps)\n",
		len(tr.Queries), (tr.End-tr.Start)/86400, tr.CountSeries(60).MeanQPS())

	series := tr.TrainCountSeries(60)
	cfg := robustscaler.DefaultTrainConfig()
	cfg.Periodicity.AggregateWindow = 60 // hours: sparse traffic needs aggregation
	cfg.Periodicity.MinPeriod = 12
	model, err := robustscaler.Train(series, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected period: %.0f hours; ADMM converged in %d iterations\n\n",
		model.PeriodSeconds/3600, model.FitStats.Iterations)

	pend := robustscaler.FixedPending(tr.MeanPending)
	replayCfg := robustscaler.ReplayConfig{
		Start:       tr.TrainEnd,
		End:         tr.End,
		Pending:     pend,
		MeanPending: tr.MeanPending,
		Tick:        1,
	}
	type entry struct {
		label  string
		policy robustscaler.Policy
	}
	hp, err := robustscaler.NewHPPolicy(model, 0.9, pend, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := robustscaler.NewRTPolicy(model, 5, pend, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := robustscaler.NewCostPolicy(model, 60, pend, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	entries := []entry{
		{"reactive (BP 0)", robustscaler.NewBackupPool(0)},
		{"BP(2)", robustscaler.NewBackupPool(2)},
		{"AdapBP(240)", robustscaler.NewAdaptiveBackupPool(240)},
		{"RobustScaler-HP(0.9)", hp},
		{"RobustScaler-RT(5s)", rt},
		{"RobustScaler-cost(60s)", cost},
	}
	fmt.Printf("%-24s %9s %9s %9s %9s %14s\n",
		"policy", "hit_rate", "rt_avg", "rt_p95", "rt_p99", "relative_cost")
	for _, e := range entries {
		res, err := robustscaler.Replay(tr.Test(), e.policy, replayCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %9.3f %9.1f %9.1f %9.1f %14.3f\n",
			e.label, res.HitRate(), res.RTAvg(),
			res.RTQuantile(0.95), res.RTQuantile(0.99), res.RelativeCost())
	}
}
