// Quickstart: train a RobustScaler model on synthetic periodic traffic,
// replay unseen traffic under the HP-constrained policy, and then drive
// the same pipeline through the scalerd HTTP control plane using the
// multi-workload /v1/workloads/{id}/... routes (the current API; the
// old single-workload /v1/... paths are only compatibility aliases).
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"robustscaler"
	"robustscaler/internal/server"
)

func main() {
	const (
		period   = 3600.0 // one-hour cycle
		trainEnd = 8 * period
		testEnd  = 10 * period
		pending  = 13.0 // instance startup time τ, seconds
	)

	// Synthesize sinusoidal traffic: a cheap stand-in for a real arrival
	// log. Any []float64 of arrival timestamps works here.
	rng := rand.New(rand.NewSource(42))
	var arrivals []float64
	t := 0.0
	for t < testEnd {
		rate := 0.3 + 0.25*math.Sin(2*math.Pi*t/period)
		t += rng.ExpFloat64() / rate // thinning-free approximation
		arrivals = append(arrivals, t)
	}
	var trainArrivals []float64
	var queries []robustscaler.Query
	for _, a := range arrivals {
		if a < trainEnd {
			trainArrivals = append(trainArrivals, a)
		} else if a < testEnd {
			queries = append(queries, robustscaler.Query{Arrival: a, Service: 20})
		}
	}

	// ── Part 1: the library pipeline ────────────────────────────────────
	// Bin the training arrivals and train the NHPP model. Periodicity is
	// detected automatically and regularizes the fit.
	series := robustscaler.CountsFromArrivals(trainArrivals, 0, trainEnd, 60)
	model, err := robustscaler.Train(series, robustscaler.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained NHPP: %d bins, detected period %.0f s, λ(now) = %.3f qps\n",
		series.Len(), model.PeriodSeconds, model.Rate(trainEnd))

	// Build the proactive policy — guarantee 90% of queries find a warm
	// instance waiting — and replay the unseen test traffic against it.
	policy, err := robustscaler.NewHPPolicy(model, 0.9, robustscaler.FixedPending(pending), 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := robustscaler.ReplayConfig{
		Start:   trainEnd,
		End:     testEnd,
		Pending: robustscaler.FixedPending(pending),
		Tick:    1,
	}
	proactive, err := robustscaler.Replay(queries, policy, cfg)
	if err != nil {
		log.Fatal(err)
	}
	reactive, err := robustscaler.Replay(queries, robustscaler.NewBackupPool(0), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-22s %10s %10s %14s\n", "policy", "hit_rate", "rt_avg", "relative_cost")
	fmt.Printf("%-22s %10.3f %10.2f %14.3f\n", "RobustScaler-HP(0.9)",
		proactive.HitRate(), proactive.RTAvg(), proactive.RelativeCost())
	fmt.Printf("%-22s %10.3f %10.2f %14.3f\n", "reactive (BP 0)",
		reactive.HitRate(), reactive.RTAvg(), reactive.RelativeCost())

	// ── Part 2: the same pipeline over HTTP ─────────────────────────────
	// In production this is a running scalerd; here the control plane is
	// started in-process. Each workload lives under its own ID — the
	// requests below are exactly
	//
	//	curl -XPOST :8080/v1/workloads/quickstart/arrivals -d '{"timestamps":[...]}'
	//	curl -XPOST :8080/v1/workloads/quickstart/train
	//	curl ':8080/v1/workloads/quickstart/plan?variant=hp&target=0.9&horizon=600&now=...'
	//	curl ':8080/v1/workloads/quickstart/status'
	scfg := server.DefaultConfig()
	// Pin the control plane's clock to the end of the training span so
	// "now"-relative surfaces (the replica recommendation below) read
	// from the modeled timeline instead of the wall clock.
	scfg.Now = func() float64 { return trainEnd }
	srv, err := server.New(scfg)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(ts.URL+"/v1/workloads/quickstart/arrivals",
		map[string]any{"timestamps": trainArrivals})
	post(ts.URL+"/v1/workloads/quickstart/train", map[string]any{})

	// Every workload carries its own versioned config — Δt, pending
	// time, QoS targets, retrain cadence — persisted with its snapshot
	// and tunable at runtime:
	//
	//	curl ':8080/v1/workloads/quickstart/config'
	//	curl -XPUT ':8080/v1/workloads/quickstart/config' -d '{"hp_target":0.9,"pending":13}'
	var cfgResp struct {
		Version  int64   `json:"version"`
		Pending  float64 `json:"pending"`
		HPTarget float64 `json:"hp_target"`
	}
	put(ts.URL+"/v1/workloads/quickstart/config", map[string]any{"hp_target": 0.9, "pending": pending}, &cfgResp)
	fmt.Printf("\nworkload config v%d: τ=%.0fs, default hp target %.2f\n",
		cfgResp.Version, cfgResp.Pending, cfgResp.HPTarget)

	var plan struct {
		Kappa int `json:"kappa"`
		Plan  []struct {
			CreateAt float64 `json:"create_at"`
			LeadSecs float64 `json:"lead_seconds"`
		} `json:"plan"`
	}
	get(fmt.Sprintf("%s/v1/workloads/quickstart/plan?variant=hp&target=0.9&horizon=600&now=%g",
		ts.URL, trainEnd), &plan)
	fmt.Printf("\nHTTP plan for workload %q: κ=%d, next %d creations:\n", "quickstart", plan.Kappa, len(plan.Plan))
	for i, p := range plan.Plan {
		if i == 3 {
			fmt.Printf("  ... %d more\n", len(plan.Plan)-i)
			break
		}
		fmt.Printf("  create at t=%.1fs (lead %.1fs)\n", p.CreateAt, p.LeadSecs)
	}

	// Close the loop: ask the autoscaler pipeline (Collect → Analyze →
	// Optimize) how many replicas this workload should run right now.
	// The HPA-style behaviors ride the same config merge plane:
	//
	//	curl -XPUT ':8080/v1/workloads/quickstart/config' \
	//	     -d '{"autoscale":{"min_replicas":1,"max_replicas":50,"scale_down_stabilization_seconds":300}}'
	//	curl ':8080/v1/workloads/quickstart/recommendation'
	var ignored struct{}
	put(ts.URL+"/v1/workloads/quickstart/config", map[string]any{
		"autoscale": map[string]any{
			"min_replicas":                     1,
			"max_replicas":                     50,
			"scale_down_stabilization_seconds": 300,
		},
	}, &ignored)
	var rec struct {
		Desired   int    `json:"desired_replicas"`
		Raw       int    `json:"raw_replicas"`
		Verdict   string `json:"verdict"`
		ClampedBy string `json:"clamped_by"`
		Inputs    struct {
			Lambda float64 `json:"expected_arrivals"`
			Lead   float64 `json:"lead_seconds"`
			Target float64 `json:"target"`
		} `json:"inputs"`
	}
	get(ts.URL+"/v1/workloads/quickstart/recommendation", &rec)
	clamp := rec.ClampedBy
	if clamp == "" {
		clamp = "none"
	}
	fmt.Printf("\nreplica recommendation: run %d replicas (raw %d, verdict %s, clamp %s)\n",
		rec.Desired, rec.Raw, rec.Verdict, clamp)
	fmt.Printf("  sized for Λ=%.2f expected arrivals over the %.0fs decision lead at target %.2f\n",
		rec.Inputs.Lambda, rec.Inputs.Lead, rec.Inputs.Target)
}

// post sends a JSON body and fails the example on any non-2xx answer.
func post(url string, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, msg)
	}
}

// put sends a JSON body via PUT and decodes the JSON response into out.
func put(url string, body, out any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("PUT %s: %s: %s", url, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// get fetches a URL and decodes the JSON response into out.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
