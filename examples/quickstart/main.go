// Quickstart: train a RobustScaler model on synthetic periodic traffic,
// replay unseen traffic under the HP-constrained policy, and compare it
// against pure reactive scaling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"robustscaler"
)

func main() {
	const (
		period   = 3600.0 // one-hour cycle
		trainEnd = 8 * period
		testEnd  = 10 * period
		pending  = 13.0 // instance startup time τ, seconds
	)

	// Synthesize sinusoidal traffic: a cheap stand-in for a real arrival
	// log. Any []float64 of arrival timestamps works here.
	rng := rand.New(rand.NewSource(42))
	var arrivals []float64
	t := 0.0
	for t < testEnd {
		rate := 0.3 + 0.25*math.Sin(2*math.Pi*t/period)
		t += rng.ExpFloat64() / rate // thinning-free approximation
		arrivals = append(arrivals, t)
	}

	// 1. Bin the training arrivals and train the NHPP model. Periodicity
	// is detected automatically and regularizes the fit.
	var trainArrivals []float64
	var queries []robustscaler.Query
	for _, a := range arrivals {
		if a < trainEnd {
			trainArrivals = append(trainArrivals, a)
		} else if a < testEnd {
			queries = append(queries, robustscaler.Query{Arrival: a, Service: 20})
		}
	}
	series := robustscaler.CountsFromArrivals(trainArrivals, 0, trainEnd, 60)
	model, err := robustscaler.Train(series, robustscaler.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained NHPP: %d bins, detected period %.0f s, λ(now) = %.3f qps\n",
		series.Len(), model.PeriodSeconds, model.Rate(trainEnd))

	// 2. Build the proactive policy: guarantee 90% of queries find a warm
	// instance waiting.
	policy, err := robustscaler.NewHPPolicy(model, 0.9, robustscaler.FixedPending(pending), 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the unseen test traffic.
	cfg := robustscaler.ReplayConfig{
		Start:   trainEnd,
		End:     testEnd,
		Pending: robustscaler.FixedPending(pending),
		Tick:    1,
	}
	proactive, err := robustscaler.Replay(queries, policy, cfg)
	if err != nil {
		log.Fatal(err)
	}
	reactive, err := robustscaler.Replay(queries, robustscaler.NewBackupPool(0), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %10s %14s\n", "policy", "hit_rate", "rt_avg", "relative_cost")
	fmt.Printf("%-22s %10.3f %10.2f %14.3f\n", "RobustScaler-HP(0.9)",
		proactive.HitRate(), proactive.RTAvg(), proactive.RelativeCost())
	fmt.Printf("%-22s %10.3f %10.2f %14.3f\n", "reactive (BP 0)",
		reactive.HitRate(), reactive.RTAvg(), reactive.RelativeCost())
}
