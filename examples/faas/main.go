// FaaS cold-start scenario: spiky function-invocation traffic (recurrent
// bursts on an hourly lattice, Google-trace-like) where each invocation
// provisions a fresh sandbox with a 13 s cold start. The example shows how
// the hitting-probability guarantee holds across targets and what it
// costs, including during bursts.
//
//	go run ./examples/faas
package main

import (
	"fmt"
	"log"

	"robustscaler"
	"robustscaler/internal/trace"
)

func main() {
	tr := trace.SyntheticGoogle(21)
	fmt.Printf("FaaS stand-in: %d invocations over 24 h (mean %.3f qps, bursts every hour)\n",
		len(tr.Queries), tr.CountSeries(60).MeanQPS())

	series := tr.TrainCountSeries(60)
	cfg := robustscaler.DefaultTrainConfig()
	cfg.Periodicity.AggregateWindow = 10
	cfg.Periodicity.MinPeriod = 3
	model, err := robustscaler.Train(series, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected period: %.0f s\n\n", model.PeriodSeconds)

	pend := robustscaler.FixedPending(tr.MeanPending)
	replayCfg := robustscaler.ReplayConfig{
		Start:       tr.TrainEnd,
		End:         tr.End,
		Pending:     pend,
		MeanPending: tr.MeanPending,
		Tick:        1,
	}

	fmt.Printf("%-10s %12s %12s %14s\n", "target_HP", "achieved_HP", "rt_avg", "relative_cost")
	for i, target := range []float64{0.5, 0.7, 0.9, 0.95} {
		policy, err := robustscaler.NewHPPolicy(model, target, pend, 1, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := robustscaler.Replay(tr.Test(), policy, replayCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %12.3f %12.2f %14.3f\n",
			target, res.HitRate(), res.RTAvg(), res.RelativeCost())
	}

	// Contrast with a statically sized warm pool at comparable cost.
	fmt.Println()
	for _, b := range []int{5, 20} {
		res, err := robustscaler.Replay(tr.Test(), robustscaler.NewBackupPool(b), replayCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("warm pool B=%-3d hit_rate %.3f  rt_avg %.2f  relative_cost %.3f\n",
			b, res.HitRate(), res.RTAvg(), res.RelativeCost())
	}
}
