// Pareto explorer: sweeps each autoscaler's trade-off parameter on a
// chosen workload and emits a CSV of (policy, hit_rate, rt_avg,
// relative_cost) points — the raw material of the paper's Fig. 4 panels,
// ready for any plotting tool:
//
//	go run ./examples/pareto -workload google > pareto.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"

	"robustscaler"
	"robustscaler/internal/trace"
)

func main() {
	workload := flag.String("workload", "google", "crs, google, or alibaba")
	seed := flag.Int64("seed", 5, "trace seed")
	flag.Parse()

	var tr *trace.Trace
	switch *workload {
	case "crs":
		tr = trace.SyntheticCRS(*seed)
	case "google":
		tr = trace.SyntheticGoogle(*seed)
	case "alibaba":
		tr = trace.SyntheticAlibaba(*seed)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}

	series := tr.TrainCountSeries(60)
	cfg := robustscaler.DefaultTrainConfig()
	cfg.Periodicity.AggregateWindow = 10
	cfg.Periodicity.MinPeriod = 3
	if *workload == "crs" {
		cfg.Periodicity.AggregateWindow = 60
		cfg.Periodicity.MinPeriod = 12
	}
	model, err := robustscaler.Train(series, cfg)
	if err != nil {
		log.Fatal(err)
	}

	pend := robustscaler.FixedPending(tr.MeanPending)
	replayCfg := robustscaler.ReplayConfig{
		Start:       tr.TrainEnd,
		End:         tr.End,
		Pending:     pend,
		MeanPending: tr.MeanPending,
		Tick:        1,
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"policy", "param", "hit_rate", "rt_avg", "relative_cost"}); err != nil {
		log.Fatal(err)
	}
	emit := func(policy robustscaler.Policy, name, param string) {
		res, err := robustscaler.Replay(tr.Test(), policy, replayCfg)
		if err != nil {
			log.Fatal(err)
		}
		rec := []string{name, param,
			fmt.Sprintf("%.4f", res.HitRate()),
			fmt.Sprintf("%.2f", res.RTAvg()),
			fmt.Sprintf("%.4f", res.RelativeCost())}
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	for _, b := range []int{0, 1, 2, 5, 10, 20, 40} {
		emit(robustscaler.NewBackupPool(b), "BP", fmt.Sprint(b))
	}
	for _, c := range []float64{10, 25, 50, 100, 200} {
		emit(robustscaler.NewAdaptiveBackupPool(c), "AdapBP", fmt.Sprint(c))
	}
	for i, target := range []float64{0.3, 0.5, 0.7, 0.85, 0.95} {
		p, err := robustscaler.NewHPPolicy(model, target, pend, 1, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		emit(p, "RobustScaler-HP", fmt.Sprint(target))
	}
	for i, budget := range []float64{10, 5, 2.5, 1} {
		p, err := robustscaler.NewRTPolicy(model, budget, pend, 1, int64(10+i))
		if err != nil {
			log.Fatal(err)
		}
		emit(p, "RobustScaler-RT", fmt.Sprint(budget))
	}
	for i, budget := range []float64{0.5, 2, 5, 12, 30} {
		p, err := robustscaler.NewCostPolicy(model, budget, pend, 1, int64(20+i))
		if err != nil {
			log.Fatal(err)
		}
		emit(p, "RobustScaler-cost", fmt.Sprint(budget))
	}
}
